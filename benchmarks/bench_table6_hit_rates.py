"""Table 6: buffer hit rates per object pool.

Expected shape (paper): small pool traffic is negligible; the CACM sets
drive mostly the medium pool, the Legal/TIPSTER sets mostly the large
pool; hit rates are "fairly significant given that the buffer sizes
allocated could be considered modest".
"""

from conftest import once

from repro.bench import emit, render_table, table6_hit_rates


def test_table6_buffer_hit_rates(benchmark, runner, results_dir):
    headers, rows = once(benchmark, lambda: table6_hit_rates(runner))
    emit(
        render_table("Table 6: Buffer hit rates for the query sets", headers, rows),
        artifact="table6.txt",
        results_dir=results_dir,
    )
    assert len(rows) == 7
    for row in rows:
        small_refs, medium_refs, large_refs = row[2], row[5], row[8]
        # Small object access is insignificant in every query set.
        assert small_refs <= 0.2 * (medium_refs + large_refs + 1)
    cacm = [row for row in rows if row[0] == "CACM"]
    big = [row for row in rows if row[0] in ("Legal", "TIPSTER 1", "TIPSTER")]
    # CACM queries favour the medium pool; big collections the large pool.
    for row in cacm:
        assert row[5] > row[8]
    for row in big:
        assert row[8] > row[5]
    # Meaningful hit rates in the dominant pool despite modest buffers.
    assert all(row[10] > 0.2 for row in big)
