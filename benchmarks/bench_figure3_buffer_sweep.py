"""Figure 3: large-buffer hit rate over a range of buffer sizes.

Expected shape (paper, TIPSTER Query Set 1): hit rate rises with buffer
size with gradually diminishing returns; "the knee of the curve can be
used to guide buffer allocation."
"""

from conftest import once

from repro.bench import emit, figure3_buffer_sweep, render_plot


def test_figure3_large_buffer_sweep(benchmark, runner, results_dir):
    sizes, rates = once(benchmark, lambda: figure3_buffer_sweep(runner, "tipster-s"))
    emit(
        render_plot(
            "Figure 3: Large object buffer hit rate vs buffer size (TIPSTER QS1)",
            [s / 1e6 for s in sizes],
            {"hit rate": rates},
            x_label="Buffer size (millions of bytes)",
            y_label="Hit rate",
        ),
        artifact="figure3.txt",
        results_dir=results_dir,
    )
    assert len(sizes) == len(rates) >= 6
    # Non-decreasing hit rate with more buffer space (deterministic LRU).
    assert all(a <= b + 0.02 for a, b in zip(rates, rates[1:]))
    assert rates[-1] > rates[0]
    # Diminishing returns: per-byte gain at the top of the curve is far
    # below the peak per-byte gain (the knee the paper points at).
    slopes = [
        (r2 - r1) / (s2 - s1)
        for (s1, r1), (s2, r2) in zip(zip(sizes, rates), zip(sizes[1:], rates[1:]))
    ]
    assert slopes[-1] <= 0.5 * max(slopes)
    # A meaningful fraction of references hit at the Table 2 size (3x).
    table2_index = sizes.index(3.0 * runner.workload("tipster-s").prepared.largest_record)
    assert rates[table2_index] > 0.3
