"""Shared fixtures for the benchmark suite.

One :class:`~repro.bench.BenchRunner` is shared by every benchmark file
so deterministic heavy work (collection preparation, system builds,
measured grids) happens once per ``pytest benchmarks/`` session.  Each
bench prints its reproduced table or figure and writes it under
``benchmarks/results/``.
"""

from pathlib import Path

import pytest

from repro.bench import BenchRunner


@pytest.fixture(scope="session")
def runner():
    return BenchRunner()


@pytest.fixture(scope="session")
def results_dir():
    return Path(__file__).parent / "results"


def once(benchmark, fn):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
