"""Table 4: system CPU plus I/O time — the replaced subsystem itself.

Expected shape (paper): the same ordering as Table 3 but much larger
improvements (the paper reports 25-64%), because user CPU is excluded
and only the storage subsystem's cost remains.
"""

from conftest import once

from repro.bench import emit, render_table, table4_system_io


def test_table4_system_io(benchmark, runner, results_dir):
    headers, rows = once(benchmark, lambda: table4_system_io(runner))
    emit(
        render_table(
            "Table 4: System CPU plus I/O times (simulated seconds)",
            headers,
            rows,
        ),
        artifact="table4.txt",
        results_dir=results_dir,
    )
    assert len(rows) == 7
    improvements = []
    for row in rows:
        btree, nocache, cache = row[2], row[3], row[4]
        assert nocache < btree, row
        assert cache <= nocache, row
        improvements.append(float(row[5].rstrip("%")))
    # Substantial improvements on the replaced subsystem, everywhere.
    assert min(improvements) >= 10
    assert max(improvements) <= 70


def test_table4_improvement_exceeds_table3(benchmark, runner):
    from repro.bench import table3_wall_clock
    from repro.core import improvement

    def compare():
        out = []
        for profile in ("cacm-s", "legal-s", "tipster1-s", "tipster-s"):
            grid = runner.grid(profile)
            for cells in grid.cells.values():
                wall = improvement(cells["btree"].wall_s, cells["mneme-cache"].wall_s)
                sysio = improvement(
                    cells["btree"].system_io_s, cells["mneme-cache"].system_io_s
                )
                out.append((wall, sysio))
        return out

    pairs = once(benchmark, compare)
    for wall, sysio in pairs:
        assert sysio > wall  # excluding user CPU magnifies the gain
