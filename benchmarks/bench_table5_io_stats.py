"""Table 5: I/O statistics — I (disk inputs), A (accesses/lookup), B (KB).

Expected shape (paper): A is ~1.9-3.1 for the B-tree (root-only node
caching), ~1.0 for Mneme without caching (auxiliary tables permanently
cached), and below 1 with record caching; on CACM, Mneme reads *more*
file bytes (whole clustered segments) yet this costs little because
segments match the 8 KB transfer block; at TIPSTER scale record caching
also reduces disk inputs.
"""

from conftest import once

from repro.bench import emit, render_table, table5_io_stats


def test_table5_io_statistics(benchmark, runner, results_dir):
    headers, rows = once(benchmark, lambda: table5_io_stats(runner))
    emit(
        render_table(
            "Table 5: I/O statistics "
            "(I = 8KB disk inputs, A = file accesses per lookup, B = KB read)",
            headers,
            rows,
        ),
        artifact="table5.txt",
        results_dir=results_dir,
    )
    assert len(rows) == 7
    for row in rows:
        a_btree, a_nocache, a_cache = row[3], row[6], row[9]
        assert 1.5 <= a_btree <= 3.5, row     # >1 access per lookup
        assert 0.95 <= a_nocache <= 1.3, row  # ~1 access per lookup
        assert a_cache < a_nocache, row       # caching cuts accesses
    # CACM: Mneme reads more file bytes than the B-tree (clustering).
    cacm_rows = [row for row in rows if row[0] == "CACM"]
    assert any(row[7] > row[4] for row in cacm_rows)
    # Large collections: the B-tree needs more disk inputs.
    big_rows = [row for row in rows if row[0] in ("Legal", "TIPSTER 1", "TIPSTER")]
    for row in big_rows:
        assert row[2] > row[5], row


def test_table5_tipster_cache_reduces_disk_inputs(benchmark, runner):
    def tipster_inputs():
        grid = runner.grid("tipster-s")
        cells = next(iter(grid.cells.values()))
        return cells["mneme-nocache"].io_inputs, cells["mneme-cache"].io_inputs

    nocache_inputs, cache_inputs = once(benchmark, tipster_inputs)
    # "The TIPSTER collections are large enough that the Mneme version
    # with inverted list record caching requires fewer I/O inputs."
    assert cache_inputs < nocache_inputs
