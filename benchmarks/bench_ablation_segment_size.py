"""Ablation C: medium pool physical segment size.

The paper chose 8 KB segments "based on the disk I/O block size and a
desire to keep the segments relatively small so as to reduce the number
of unused objects retrieved with each segment."  Expected shape: larger
segments read more unused bytes per access (B grows with segment size);
the 8 KB choice is at or near the best system+I/O time.
"""

from conftest import once

from repro.bench import emit, render_table, segment_size_ablation


def test_segment_size_ablation(benchmark, runner, results_dir):
    rows = once(benchmark, lambda: segment_size_ablation(runner, "legal-s"))
    emit(
        render_table(
            "Ablation C: medium segment size sweep (Legal QS1)",
            ("Segment (bytes)", "System+I/O (s)", "Disk inputs", "KB read"),
            [(seg, round(sysio, 2), inputs, round(kb)) for seg, sysio, inputs, kb in rows],
        ),
        artifact="ablation_segment_size.txt",
        results_dir=results_dir,
    )
    by_size = {seg: (sysio, inputs, kb) for seg, sysio, inputs, kb in rows}
    assert set(by_size) == {4096, 8192, 16384, 32768}
    # Bigger segments drag in more unused object bytes per access.
    assert by_size[32768][2] >= by_size[8192][2]
    # The paper's 8 KB choice is within 15% of the best measured time.
    best = min(sysio for sysio, _i, _kb in by_size.values())
    assert by_size[8192][0] <= 1.15 * best
