"""Extension: inverted list update through linked objects.

The paper's future work: "Inter-object references allow structures such
as linked lists to be used to break large objects into more manageable
pieces.  This could provide better support for inverted list updates."
Expected shape: appending to a large contiguous object relocates the
whole object each time (write traffic quadratic in total size), while a
linked object writes only the new chunk and a tail-header rewrite
(write traffic linear), so the linked variant wins by a wide factor.
"""

from conftest import once

from repro.bench import emit, render_table, update_extension_experiment


def test_update_extension(benchmark, runner, results_dir):
    results = once(benchmark, update_extension_experiment)
    emit(
        render_table(
            "Extension: growing a 256 KB inverted list by 24 appends",
            ("Variant", "Appends", "Bytes written", "Blocks written", "Simulated ms"),
            [(r.variant, r.appends, r.bytes_written, r.blocks_written, round(r.wall_ms))
             for r in results],
        ),
        artifact="extension_update.txt",
        results_dir=results_dir,
    )
    by_variant = {r.variant: r for r in results}
    contiguous = by_variant["contiguous"]
    linked = by_variant["linked"]
    # Linked objects make update cost proportional to the appended data.
    assert linked.bytes_written < contiguous.bytes_written / 3
    assert linked.blocks_written < contiguous.blocks_written
    assert linked.wall_ms < contiguous.wall_ms
