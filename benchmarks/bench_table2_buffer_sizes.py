"""Table 2: Mneme buffer sizes from the paper's sizing heuristics.

Expected shape: small buffer constant (3 segments); medium buffer at
the 3-segment floor for CACM and 9% of the large buffer elsewhere;
large buffer = 3 x the largest inverted list, growing with collection
size.
"""

from conftest import once

from repro.bench import emit, render_table, table2_buffers


def test_table2_buffer_sizes(benchmark, runner, results_dir):
    headers, rows = once(benchmark, lambda: table2_buffers(runner))
    emit(
        render_table("Table 2: Mneme buffer sizes (KB)", headers, rows),
        artifact="table2.txt",
        results_dir=results_dir,
    )
    assert len(rows) == 4
    small = [row[1] for row in rows]
    assert len(set(small)) == 1  # 3 small segments for every collection
    assert small[0] == 12.0
    large = [row[3] for row in rows]
    assert large == sorted(large)  # grows with the largest record
    assert rows[0][2] == 24.0  # CACM medium buffer floored at 3 segments
    # Larger collections: medium = 9% of large.
    for row in rows[1:]:
        if row[3] * 0.09 > 24.0:
            assert abs(row[2] - 0.09 * row[3]) / row[3] < 0.01
