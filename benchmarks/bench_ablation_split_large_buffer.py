"""Ablation B: one large buffer vs a partitioned buffer of equal total.

The paper: "We experimented with further partitioning the large object
buffer, but found the best hit rates were achieved with a single buffer
of the same total size."  Partitioning needs a size threshold, and the
right threshold is workload-dependent — our sweep shows both regimes:
badly chosen thresholds lose to the single buffer (the paper's
observation), while a lucky threshold can win by protecting mid-size
objects from eviction by the giants.  The robust conclusion matches the
paper's: without workload knowledge, the single buffer is the safe
choice.
"""

from conftest import once

from repro.bench import emit, render_table, split_large_buffer_ablation


def test_split_large_buffer_ablation(benchmark, runner, results_dir):
    rows = once(benchmark, lambda: split_large_buffer_ablation(runner, "tipster-s"))
    emit(
        render_table(
            "Ablation B: single vs partitioned large object buffer (TIPSTER)",
            ("Variant", "Refs", "Hits", "Hit rate"),
            [(variant, refs, hits, round(rate, 3)) for variant, refs, hits, rate in rows],
            note="Same total budget in every variant; split@N partitions at N bytes.",
        ),
        artifact="ablation_split_buffer.txt",
        results_dir=results_dir,
    )
    rates = {variant: rate for variant, _r, _h, rate in rows}
    single = rates.pop("single")
    splits = list(rates.values())
    # Every variant sees the same reference stream.
    refs = {r for _v, r, _h, _rate in rows}
    assert len(refs) == 1
    # The paper's case is reproducible: some partitionings lose outright.
    assert min(splits) < single
    # And no partitioning is dramatically better than knowing nothing —
    # the single buffer is within reach of the best split.
    assert single >= 0.7 * max(splits)
