"""Extension: garbage collection and compaction of the object store.

Section 2 of the paper frames inverted-list modification as a space
management problem: deletions "create holes" and growth forces
relocation.  With a persistent object store the reclamation can happen
at the storage layer.  Expected shape: after heavy update churn the
main file carries substantial dead space; compaction reclaims it and
every live record remains intact.
"""

from conftest import once

from repro.bench import emit, render_table
from repro.inquery import Document, IndexBuilder, MnemeInvertedFile, decode_record
from repro.mneme import compact
from repro.simdisk import SimClock, SimDisk, SimFileSystem


def churn_and_compact():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=256)
    store = MnemeInvertedFile(fs)
    builder = IndexBuilder(fs, store, stem_fn=str)
    for doc_id in range(1, 250):
        builder.add_document(
            Document(doc_id, tokens=["grow"] * 40 + [f"only{doc_id}"] * 3)
        )
    index = builder.finalize()

    # Churn: repeatedly grow the big record so relocations leak extents.
    from repro.inquery import encode_record, merge_records

    entry = index.term_entry("grow")
    for round_no in range(12):
        record = store.fetch(entry.storage_key)
        extra = [(1000 + round_no, tuple(range(300)))]
        entry.storage_key = store.update_record(
            entry.storage_key, merge_records(record, extra)
        )
        entry.df += 1
        entry.ctf += 300
    store.flush()

    before = store.mfile.main.size
    report = compact(store.mfile)
    after = store.mfile.main.size

    # Every record survives byte-for-byte.
    for check in ("grow", "only7", "only123"):
        e = index.term_entry(check)
        postings = decode_record(store.fetch(e.storage_key))
        assert len(postings) == e.df
    return before, after, report


def test_compaction_extension(benchmark, runner, results_dir):
    before, after, report = once(benchmark, churn_and_compact)
    emit(
        render_table(
            "Extension: store compaction after update churn",
            ("Measure", "Value"),
            [
                ("main file before (KB)", round(before / 1024, 1)),
                ("main file after (KB)", round(after / 1024, 1)),
                ("bytes reclaimed", report.bytes_reclaimed),
                ("segments copied", report.segments_copied),
                ("segments dropped", report.segments_dropped),
            ],
        ),
        artifact="extension_compaction.txt",
        results_dir=results_dir,
    )
    assert after < before
    # The churn leaked at least several relocated copies of the record.
    assert report.bytes_reclaimed > 0.3 * before
