"""Extension: transaction overhead on the read-mostly workload.

The paper: "the nature of access to the data we are supporting here is
predominately read-only.  We expect that the addition of these services
[concurrency control and transaction support] would not introduce
excessive overhead."  Expected shape: wrapping every record lookup of a
query batch in a shared-locked transaction costs only a small fraction
of the batch's time, and query results are unchanged.
"""

import time

from conftest import once

from repro.bench import emit, render_table
from repro.core import cold_start, config_by_name, materialize
from repro.inquery import RetrievalEngine
from repro.mneme import TransactionManager, split_global


def run_overhead(runner, profile="legal-s"):
    workload = runner.workload(profile)
    query_set = workload.query_sets[0]
    system = materialize(workload.prepared, config_by_name("mneme-cache"))
    store = system.index.store

    # Variant 1: plain batch run.
    cold_start(system)
    t0 = time.perf_counter()
    plain = RetrievalEngine(system.index, top_k=20).run_batch(query_set.queries)
    plain_real = time.perf_counter() - t0
    plain_sim = system.clock.time.wall_ms

    # Variant 2: the same batch with every record lookup inside a
    # shared-locked transaction (one transaction per query).
    manager = TransactionManager(store.mfile)
    original_fetch = store.fetch
    current = {"txn": None}

    def locked_fetch(key):
        _file_no, oid = split_global(key)
        current["txn"].read(oid)  # shared lock + (buffered) read
        return original_fetch(key)

    store.fetch = locked_fetch
    engine = RetrievalEngine(system.index, top_k=20)
    cold_start(system)
    t0 = time.perf_counter()
    locked = []
    for query in query_set.queries:
        with manager.begin() as txn:
            current["txn"] = txn
            locked.append(engine.run_query(query))
    locked_real = time.perf_counter() - t0
    locked_sim = system.clock.time.wall_ms
    store.fetch = original_fetch

    identical = all(
        a.ranking == b.ranking for a, b in zip(plain, locked)
    )
    return {
        "plain_real_s": plain_real,
        "locked_real_s": locked_real,
        "plain_sim_ms": plain_sim,
        "locked_sim_ms": locked_sim,
        "identical": identical,
        "committed": manager.committed,
        "lock_acquisitions": manager.locks.acquisitions,
        "conflicts": manager.locks.conflicts,
    }


def test_transaction_overhead(benchmark, runner, results_dir):
    stats = once(benchmark, lambda: run_overhead(runner))
    real_overhead = stats["locked_real_s"] / max(stats["plain_real_s"], 1e-9) - 1
    emit(
        render_table(
            "Extension: transactional reads on the query workload (Legal QS1)",
            ("Measure", "Value"),
            [
                ("queries (committed transactions)", stats["committed"]),
                ("lock acquisitions", stats["lock_acquisitions"]),
                ("lock conflicts", stats["conflicts"]),
                ("rankings identical", str(stats["identical"])),
                ("host-time overhead", f"{real_overhead:.1%}"),
            ],
            note="Sequential queries conflict on nothing; locking is pure overhead, "
                 "and it is small — the paper's expectation.",
        ),
        artifact="extension_txn.txt",
        results_dir=results_dir,
    )
    assert stats["identical"]
    assert stats["conflicts"] == 0
    assert stats["committed"] == 50
    # "Would not introduce excessive overhead": under 2x even by the
    # crude host-time measure (simulated time is unchanged by design).
    assert stats["locked_real_s"] < 2.0 * stats["plain_real_s"] + 0.05
