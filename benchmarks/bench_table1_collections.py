"""Table 1: document collection statistics and index file sizes.

Expected shape (paper): record counts scale with collection size; the
Mneme file is smaller than the B-tree file only for the smallest
collection in the paper — in our reproduction the B-tree is denser at
small scale (see EXPERIMENTS.md), but the Legal/TIPSTER ordering
(B-tree smaller than Mneme) holds.
"""

from conftest import once

from repro.bench import emit, render_table, table1_collections


def test_table1_collection_statistics(benchmark, runner, results_dir):
    headers, rows = once(benchmark, lambda: table1_collections(runner))
    text = emit(
        render_table(
            "Table 1: Document collection statistics (sizes in KB)",
            headers,
            rows,
            note="Synthetic scaled stand-ins; see DESIGN.md §5 for scale factors.",
        ),
        artifact="table1.txt",
        results_dir=results_dir,
    )
    assert len(rows) == 4
    # Collections grow monotonically, as in the paper.
    docs = [row[1] for row in rows]
    assert docs == sorted(docs)
    records = [row[3] for row in rows]
    assert records == sorted(records)
    # Table 1 direction for the large collections: B-tree file smaller.
    for row in rows[1:]:
        assert row[4] < row[5]
