"""Ablation D: file-system read-ahead under chunk-streamed evaluation.

The paper's platform (ULTRIX) prefetched sequentially read files.  Our
calibrated configurations leave read-ahead off to keep the measured
``I`` interpretable; this ablation turns it on and drives the access
pattern that benefits: document-at-a-time streaming of linked records,
which reads a chain's chunks in consecutive file positions across
separate file accesses.  Expected shape: read-ahead lowers I/O wait for
the streaming engine without changing any result.
"""

from conftest import once

from repro.bench import emit, render_table
from repro.core import cold_start, config_by_name, materialize
from repro.inquery import DocumentAtATimeEngine


def run_sweep(runner, profile="legal-s"):
    workload = runner.workload(profile)
    queries = [q for q in workload.query_sets[0].queries if q.startswith("#sum(")]
    rows = []
    rankings = {}
    for readahead in (0, 2, 8):
        system = materialize(
            workload.prepared,
            config_by_name(
                "mneme-linked", chunk_bytes=4096, readahead_blocks=readahead
            ),
        )
        cold_start(system)
        engine = DocumentAtATimeEngine(system.index, top_k=20)
        start = system.clock.snapshot()
        results = engine.run_batch(queries)
        elapsed = system.clock.since(start)
        rankings[readahead] = [r.ranking for r in results]
        rows.append((
            readahead,
            round(elapsed.io_ms / 1000.0, 2),
            round(elapsed.system_io_ms / 1000.0, 2),
            system.fs.disk.stats.blocks_read,
        ))
    return rows, rankings


def test_readahead_ablation(benchmark, runner, results_dir):
    rows, rankings = once(benchmark, lambda: run_sweep(runner))
    emit(
        render_table(
            "Ablation D: FS read-ahead under document-at-a-time streaming (Legal)",
            ("Read-ahead blocks", "I/O wait (s)", "Sys+I/O (s)", "Blocks read"),
            rows,
        ),
        artifact="ablation_readahead.txt",
        results_dir=results_dir,
    )
    by_readahead = {row[0]: row for row in rows}
    # Results are identical regardless of prefetching.
    assert rankings[0] == rankings[2] == rankings[8]
    # Prefetching reduces I/O wait for the sequential chunk streams.
    assert by_readahead[8][1] <= by_readahead[0][1]
