"""Table 3: wall-clock time per query set and configuration.

Expected shape (paper): Mneme without caching already beats the B-tree;
caching helps further; improvements are a single- to low-double-digit
percentage of wall-clock time because user CPU (identical across
configurations) increasingly dominates as collections grow.
"""

from conftest import once

from repro.bench import emit, render_table, table3_wall_clock


def test_table3_wall_clock(benchmark, runner, results_dir):
    # This is the heavy benchmark: it measures the full grid (every
    # query set x every configuration, cold-started) on first use.
    headers, rows = once(benchmark, lambda: table3_wall_clock(runner))
    emit(
        render_table(
            "Table 3: Wall-clock times (simulated seconds)",
            headers,
            rows,
            note="Improvement = (B-tree - Mneme cache) / B-tree, as in the paper.",
        ),
        artifact="table3.txt",
        results_dir=results_dir,
    )
    assert len(rows) == 7  # seven query sets, as in the paper
    for row in rows:
        btree, nocache, cache = row[2], row[3], row[4]
        assert nocache <= btree, row
        assert cache <= nocache, row
        improvement = float(row[5].rstrip("%"))
        assert 0 <= improvement <= 40
