"""Figure 1: cumulative distribution of inverted list record sizes.

Expected shape (paper, for Legal): around half of the records are at or
below the 12-byte small object threshold, yet those records account for
only a few percent of total file bytes; the bytes curve rises late
because a few huge lists dominate the file.
"""

from conftest import once

from repro.bench import emit, figure1_size_distribution, render_plot


def test_figure1_record_size_distribution(benchmark, runner, results_dir):
    prepared = runner.workload("legal-s").prepared
    xs, series = once(benchmark, lambda: figure1_size_distribution(prepared))
    emit(
        render_plot(
            "Figure 1: Cumulative distribution of inverted list sizes (Legal)",
            xs,
            series,
            x_label="Inverted list record size (bytes)",
            y_label="Cumulative %",
            log_x=True,
        ),
        artifact="figure1.txt",
        results_dir=results_dir,
    )
    records, bytes_ = series["% of Records"], series["% of File Size"]
    assert records[-1] == 100.0 and bytes_[-1] == 100.0
    assert all(a <= b + 1e-9 for a, b in zip(records, records[1:]))  # monotone
    assert all(a <= b + 1e-9 for a, b in zip(bytes_, bytes_[1:]))
    # At every size the records curve is at or above the bytes curve.
    assert all(r >= b - 1e-9 for r, b in zip(records, bytes_))
    # The paper's design point: ~half the records at <= 12 bytes...
    at_12 = max(p for x, p in zip(xs, records) if x <= 12.5)
    assert 40 <= at_12 <= 70
    # ...contributing only a small share of file bytes (the paper saw
    # <1-5%; our 25-75x scale-down shortens the huge-list tail, so the
    # share is a little larger but still far below the record share).
    bytes_at_12 = max(p for x, p in zip(xs, bytes_) if x <= 12.5)
    assert bytes_at_12 < 15
    assert bytes_at_12 < at_12 / 3


def test_figure1_shape_similar_across_collections(benchmark, runner):
    """The paper: plots for the other collections "have similar shapes"."""

    def all_curves():
        out = {}
        for profile in ("cacm-s", "legal-s", "tipster1-s", "tipster-s"):
            prepared = runner.workload(profile).prepared
            _xs, series = figure1_size_distribution(prepared)
            out[profile] = series
        return out

    curves = once(benchmark, all_curves)
    for profile, series in curves.items():
        records = series["% of Records"]
        bytes_ = series["% of File Size"]
        # Same qualitative shape everywhere: records curve always at or
        # above the bytes curve, both reaching 100%.
        assert records[-1] == 100.0 and bytes_[-1] == 100.0
        assert all(r >= b - 1e-9 for r, b in zip(records, bytes_)), profile
        # Early mass in records, late mass in bytes.
        early = len(records) // 3
        assert records[early] > bytes_[early] + 20, profile
