"""Figure 2: frequency of use of different inverted list sizes.

Expected shape (paper, Legal Query Set 2): query terms almost never
touch the tiny records — "the small inverted lists are accessed
rarely" — and the bulk of uses lands on lists of thousands of bytes and
up.
"""

from conftest import once

from repro.bench import emit, figure2_term_use, render_plot


def test_figure2_term_use_by_list_size(benchmark, runner, results_dir):
    workload = runner.workload("legal-s")
    query_set = workload.query_sets[1]  # Legal Query Set 2, as in the paper

    points = once(benchmark, lambda: figure2_term_use(workload.prepared, query_set))
    xs = [float(size) for size, _uses in points]
    ys = [float(uses) for _size, uses in points]
    emit(
        render_plot(
            "Figure 2: Frequency of use of inverted list sizes (Legal QS2)",
            xs,
            {"uses": ys},
            x_label="Inverted list record size (bytes)",
            y_label="Number of uses",
            log_x=True,
        ),
        artifact="figure2.txt",
        results_dir=results_dir,
    )
    assert points
    uses_small = sum(uses for size, uses in points if size <= 12)
    uses_total = sum(uses for _size, uses in points)
    # Small records are rarely accessed.
    assert uses_small <= 0.02 * uses_total
    # The majority of uses hit lists of at least 1 KB.
    uses_big = sum(uses for size, uses in points if size >= 1024)
    assert uses_big >= 0.6 * uses_total
