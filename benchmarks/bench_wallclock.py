"""Real wall-clock speedup of the vectorized fast path.

Unlike the table benchmarks (which report *simulated* seconds), this
measures how long the reproduction itself takes to run: index build,
term-at-a-time and document-at-a-time query evaluation in real seconds,
pure-Python reference vs. the :mod:`repro.fastpath` kernels, with the
observational-identity contract (rankings, simulated clock, I/A/B,
buffer hits) asserted along the way.

The four-collection regression gate lives in
``scripts/bench.sh --check``; this tier2 test is the quick single-profile
speedup assertion.
"""

import json

import pytest

from conftest import once

from repro.bench.wallclock import run_benchmark


@pytest.mark.tier2
def test_wallclock_fastpath_speedup(benchmark, results_dir):
    report = once(benchmark, lambda: run_benchmark(["legal-s"], repeats=1))
    cell = report["profiles"]["legal-s"]
    (results_dir / "wallclock.json").write_text(json.dumps(report, indent=2) + "\n")

    # The fast path must be observationally identical to the reference.
    assert cell["invariant"], cell
    for name, row in cell["phases"].items():
        if "identical" in row:
            assert all(row["identical"].values()), (name, row["identical"])
    # Both engines must be covered by the gate's phases.
    assert any(name.startswith("query:") for name in cell["phases"])
    assert any(name.startswith("daat:") for name in cell["phases"])

    # The point of the exercise: a real end-to-end speedup.
    assert cell["end_to_end"]["speedup"] >= 3.0, cell["end_to_end"]
