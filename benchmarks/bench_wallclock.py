"""Real wall-clock speedup of the vectorized fast path.

Unlike the table benchmarks (which report *simulated* seconds), this
measures how long the reproduction itself takes to run: index build and
query evaluation in real seconds, pure-Python reference vs. the
:mod:`repro.fastpath` kernels, with the observational-identity contract
(rankings, simulated clock, I/A/B, buffer hits) asserted along the way.
"""

import json

import pytest

from conftest import once

from repro.bench.wallclock import run_benchmark


@pytest.mark.tier2
def test_wallclock_fastpath_speedup(benchmark, results_dir):
    report = once(benchmark, lambda: run_benchmark(["legal-s"]))
    cell = report["profiles"]["legal-s"]
    (results_dir / "wallclock.json").write_text(json.dumps(report, indent=2) + "\n")

    # The fast path must be observationally identical to the reference.
    assert cell["invariant"], cell
    for name, row in cell["query_sets"].items():
        assert all(row["identical"].values()), (name, row["identical"])

    # The point of the exercise: a real end-to-end speedup.
    assert cell["end_to_end"]["speedup"] >= 3.0, cell["end_to_end"]
