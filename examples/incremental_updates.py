#!/usr/bin/env python3
"""Dynamic update: adding and removing documents without re-indexing.

Classic INQUERY treats collections as archival — "addition or deletion
of a single document to or from an existing collection is not directly
supported and requires the entire document collection to be re-indexed."
With the persistent object store underneath, per-record update becomes
tractable.  This example:

1. indexes a small collection on Mneme (with a write-ahead log),
2. adds a document incrementally and searches for it,
3. removes a document and shows its postings are gone,
4. grows a huge inverted list as a *linked object* (the paper's
   future-work feature) and compares the write traffic against
   relocating a contiguous object,
5. simulates a crash and recovers from the redo log.

Run:  python examples/incremental_updates.py
"""

from repro.inquery import (
    DEFAULT_STOPWORDS,
    Document,
    IndexBuilder,
    MnemeInvertedFile,
    RetrievalEngine,
    add_document_incremental,
    remove_document_incremental,
)
from repro.mneme import (
    ChunkedLargeObjectPool,
    MnemeStore,
    RedoLog,
    append_linked,
    read_linked,
    recover,
    write_linked,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem

BASE_DOCUMENTS = [
    Document(1, "case-001", "contract dispute over software licensing terms"),
    Document(2, "case-002", "patent infringement claim on compression methods"),
    Document(3, "case-003", "appeal of a database copyright judgement"),
    Document(4, "case-004", "licensing terms for distributed database software"),
]


def main() -> None:
    clock = SimClock()
    fs = SimFileSystem(SimDisk(clock), cache_blocks=64)
    wal = RedoLog(fs.create("invfile.wal"))
    store = MnemeInvertedFile(fs, wal=wal)
    builder = IndexBuilder(fs, store, stopwords=DEFAULT_STOPWORDS)
    builder.add_documents(BASE_DOCUMENTS)
    index = builder.finalize()
    engine = RetrievalEngine(index, top_k=3)
    print(f"Indexed {index.stats.documents} base documents.")

    # -- incremental addition ------------------------------------------------
    new_doc = Document(5, "case-005",
                       "trade secret dispute over buffer management software")
    add_document_incremental(index, new_doc)
    result = engine.run_query("#and( buffer management )")
    print(f"\nAfter adding case-005, '#and( buffer management )' retrieves: "
          f"{[index.doctable.names[d] for d in result.doc_ids()]}")
    assert 5 in result.doc_ids()

    # -- incremental deletion -------------------------------------------------
    rewritten = remove_document_incremental(index, 2)
    print(f"Removed case-002; {rewritten} inverted lists rewritten.")
    assert 2 not in engine.run_query("patent infringement").doc_ids()

    # -- linked large objects for growing lists -------------------------------
    print("\nGrowing a 192 KB inverted list by 16 x 4 KB appends:")
    for variant in ("contiguous", "linked"):
        vclock = SimClock()
        vfs = SimFileSystem(SimDisk(vclock), cache_blocks=64)
        vstore = MnemeStore(vfs)
        mfile = vstore.open_file("big")
        pool = mfile.create_pool(3, ChunkedLargeObjectPool)
        mfile.load()
        body = b"x" * 196608
        if variant == "contiguous":
            oid = pool.create(body)
        else:
            oid = write_linked(pool, body, chunk_bytes=32768)
        mfile.flush()
        written_before = vfs.disk.stats.blocks_written
        grown = body
        for i in range(16):
            extra = bytes([65 + i]) * 4096
            grown += extra
            if variant == "contiguous":
                pool.modify(oid, grown)
            else:
                append_linked(pool, oid, extra, chunk_bytes=32768)
        mfile.flush()
        back = pool.fetch(oid) if variant == "contiguous" else read_linked(pool, oid)
        assert back == grown
        blocks = vfs.disk.stats.blocks_written - written_before
        print(f"  {variant:12s}: {blocks:5d} disk blocks written")

    # -- crash and recovery ----------------------------------------------------
    print("\nSimulating a crash: wiping the main file's segment area...")
    image = store.mfile.main.read(0, store.mfile.main.size)
    store.mfile.main.write(16, b"\x00" * (store.mfile.main.size - 16))
    report = recover(wal, store.mfile.main)
    restored = store.mfile.main.read(0, store.mfile.main.size)
    print(f"Recovery replayed {report.replayed} redo records "
          f"({report.bytes_replayed} bytes); torn tail: {report.torn_tail}")
    assert restored == image
    print("Main file bytes identical to the pre-crash image.")


if __name__ == "__main__":
    main()
