#!/usr/bin/env python3
"""Legal-collection scenario: the paper's storage comparison, end to end.

Generates a scaled synthetic Legal collection (long case descriptions,
Zipf vocabulary), materializes all three storage configurations of the
paper, runs the same query set against each from a cold start, and
prints the comparison the paper's Tables 3-5 make: identical rankings,
different storage cost.

Run:  python examples/legal_search.py        (takes ~a minute)
"""

from repro.core import build_systems, improvement, load_workload, measure_run
from repro.inquery import RetrievalEngine, evaluate_run
from repro.synth import relevance_from_postings


def main() -> None:
    print("Generating and indexing the scaled Legal collection...")
    workload = load_workload("legal-s")
    prepared = workload.prepared
    print(f"  {len(prepared.collection)} documents, "
          f"{prepared.stats.postings} postings, "
          f"{prepared.record_count} inverted lists, "
          f"largest list {prepared.largest_record / 1024:.1f} KB")

    systems = build_systems(prepared)
    query_set = workload.query_sets[0]
    print(f"\nRunning query set {query_set.name!r} "
          f"({len(query_set)} queries) on each configuration:\n")

    metrics = {}
    rankings = {}
    header = f"{'configuration':16s} {'wall(s)':>9s} {'sys+I/O(s)':>11s} {'I':>6s} {'A':>6s} {'B(KB)':>9s}"
    print(header)
    print("-" * len(header))
    for name, system in systems.items():
        run = measure_run(system, query_set.queries, query_set.name, keep_results=True)
        metrics[name] = run
        rankings[name] = [result.doc_ids() for result in run.results]
        print(f"{name:16s} {run.wall_s:9.2f} {run.system_io_s:11.2f} "
              f"{run.io_inputs:6d} {run.accesses_per_lookup:6.2f} "
              f"{run.kbytes_from_file:9.0f}")

    assert rankings["btree"] == rankings["mneme-nocache"] == rankings["mneme-cache"]
    print("\nAll three configurations returned identical rankings "
          "(recall/precision are fixed across systems, as the paper notes).")

    relevance = relevance_from_postings(query_set.term_ranks, prepared.docs_of_rank)
    evaluation = evaluate_run(rankings["btree"], relevance)
    print(f"Against synthetic judgments: mean average precision "
          f"{evaluation.mean_average_precision:.3f} over {evaluation.queries} queries.")

    gain_wall = improvement(metrics["btree"].wall_s, metrics["mneme-cache"].wall_s)
    gain_sysio = improvement(
        metrics["btree"].system_io_s, metrics["mneme-cache"].system_io_s
    )
    print(f"\nMneme (cached) vs B-tree: {gain_wall:.0%} of wall-clock time, "
          f"{gain_sysio:.0%} of the replaced subsystem's time (system+I/O).")


if __name__ == "__main__":
    main()
