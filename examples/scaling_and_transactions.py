#!/usr/bin/env python3
"""Scaling and services: document-at-a-time, transactions, GC, images.

The paper's conclusion argues that an IR system on a persistent object
store can pick up "more sophisticated data management services ...
without performance penalty".  This example tours the services this
reproduction adds on top of the paper's integration:

1. document-at-a-time evaluation over linked records, with the stream
   memory high-water mark vs the records' full size;
2. transactions: a conflicting concurrent update is aborted cleanly;
3. garbage collection + compaction after update churn;
4. a machine image saved to the host disk and reopened, cold.

Run:  python examples/scaling_and_transactions.py
"""

import tempfile
from pathlib import Path

from repro.inquery import (
    CollectionIndex,
    DocumentAtATimeEngine,
    Document,
    IndexBuilder,
    LinkedMnemeInvertedFile,
    RetrievalEngine,
)
from repro.mneme import TransactionManager, LockConflictError, compact, split_global
from repro.simdisk import SimClock, SimDisk, SimFileSystem, load_image, save_image


def build():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=128)
    store = LinkedMnemeInvertedFile(fs, medium_max_bytes=64, chunk_bytes=256)
    builder = IndexBuilder(fs, store, stem_fn=str)
    for doc_id in range(1, 300):
        builder.add_document(
            Document(doc_id, tokens=["storage", "engine"] + [f"only{doc_id}"])
        )
    index = builder.finalize()
    index.save()
    return index


def main() -> None:
    index = build()
    store = index.store

    # -- 1. document-at-a-time ------------------------------------------------
    taat = RetrievalEngine(index, top_k=5)
    daat = DocumentAtATimeEngine(index, top_k=5)
    query = "#sum( storage engine )"
    taat_result = taat.run_query(query)
    daat_result = daat.run_query(query)
    assert taat_result.ranking == daat_result.ranking
    full_bytes = sum(
        len(store.fetch(index.term_entry(t).storage_key))
        for t in ("storage", "engine")
    )
    print("1. Document-at-a-time over linked records")
    print(f"   identical top-5 rankings: True")
    print(f"   record bytes if fully resident (TAAT): {full_bytes}")
    print(f"   stream high-water mark (DAAT):         {daat_result.peak_resident_bytes}")

    # -- 2. transactions ---------------------------------------------------------
    print("\n2. Transactions (strict 2PL, no-wait)")
    manager = TransactionManager(store.mfile)
    entry = index.term_entry("only5")
    _file_no, oid = split_global(entry.storage_key)
    writer = manager.begin()
    writer.write(oid, store.mfile.fetch(oid))
    competitor = manager.begin()
    try:
        competitor.write(oid, b"conflicting")
        raise AssertionError("conflict not detected")
    except LockConflictError as error:
        print(f"   competing writer aborted: {error}")
    writer.commit()
    print(f"   committed={manager.committed} aborted={manager.aborted}")

    # -- 3. churn, then GC + compaction ------------------------------------------
    print("\n3. Compaction after update churn")
    from repro.inquery import encode_record, merge_records

    entry = index.term_entry("storage")
    for round_no in range(8):
        doc_id = 500 + round_no
        index.doctable.add(doc_id, 2)  # the churn documents exist too
        record = store.fetch(entry.storage_key)
        entry.storage_key = store.update_record(
            entry.storage_key, merge_records(record, [(doc_id, (0, 1))])
        )
        entry.df += 1
        entry.ctf += 2
    store.flush()
    before = store.mfile.main.size
    report = compact(store.mfile)
    print(f"   main file: {before} -> {store.mfile.main.size} bytes "
          f"({report.bytes_reclaimed} reclaimed, "
          f"{report.segments_copied} segments copied)")

    # -- 4. machine image ----------------------------------------------------------
    print("\n4. Host-disk machine image")
    index.save()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "machine.img"
        size = save_image(index.fs, path)
        print(f"   saved {size / 1024:.0f} KB image")
        loaded_fs = load_image(path)
        reopened = CollectionIndex.open(
            loaded_fs,
            LinkedMnemeInvertedFile(loaded_fs, medium_max_bytes=64, chunk_bytes=256),
            stem_fn=str,
        )
        result = RetrievalEngine(reopened, top_k=3).run_query("#sum( storage engine )")
        print(f"   reopened cold and queried: top doc {result.ranking[0][0]}, "
              f"{len(result.ranking)} results")


if __name__ == "__main__":
    main()
