#!/usr/bin/env python3
"""Buffer tuning: find the knee of the hit-rate curve (Figure 3).

The paper sizes the large object buffer at 3x the largest inverted list
and shows (Figure 3) that growing the buffer yields diminishing
returns.  This example sweeps the large buffer over a range of sizes on
the scaled Legal collection and prints the hit-rate curve with the
Table 2 operating point marked.

Run:  python examples/buffer_tuning.py
"""

from repro.core import cold_start, load_workload, materialize, config_by_name, table2_buffer_sizes
from repro.inquery import BufferSizes, RetrievalEngine

MULTIPLIERS = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 9.0)


def main() -> None:
    workload = load_workload("legal-s")
    system = materialize(workload.prepared, config_by_name("mneme-cache"))
    store = system.index.store
    query_set = workload.query_sets[1]
    base = table2_buffer_sizes(workload.prepared.largest_record)
    largest = workload.prepared.largest_record
    print(f"Largest inverted list: {largest / 1024:.1f} KB; "
          f"Table 2 operating point = 3x = {3 * largest / 1024:.1f} KB\n")
    print(f"{'multiplier':>10s} {'buffer KB':>10s} {'refs':>6s} {'hits':>6s} {'hit rate':>9s}")

    previous_rate = None
    for multiplier in MULTIPLIERS:
        large = max(int(multiplier * largest), 1)
        store.attach_buffers(
            BufferSizes(small=base.small, medium=base.medium, large=large)
        )
        cold_start(system)
        before = store.buffer_stats()["large"].copy()
        RetrievalEngine(system.index).run_batch(query_set.queries)
        delta = store.buffer_stats()["large"] - before
        marker = "  <- Table 2 heuristic" if multiplier == 3.0 else ""
        gain = "" if previous_rate is None else f"  (+{delta.hit_rate - previous_rate:.3f})"
        print(f"{multiplier:>10.1f} {large / 1024:>10.1f} {delta.refs:>6d} "
              f"{delta.hits:>6d} {delta.hit_rate:>9.3f}{gain}{marker}")
        previous_rate = delta.hit_rate

    print("\nDiminishing returns past the knee: the marginal hit-rate gain per")
    print("doubling shrinks, which is how the paper guides buffer allocation.")


if __name__ == "__main__":
    main()
