#!/usr/bin/env python3
"""Informetric file design: measuring a collection before building files.

The paper takes Wolfram's advice that "the informetric characteristics
of document databases should be taken into consideration when designing
the files used by an IR system".  This example does exactly that, in
order: profile a collection's term distribution, derive the object-pool
partition from the measured record sizes, and check the derived design
against the paper's fixed 12 B / 4 KB thresholds.

Run:  python examples/informetric_design.py
"""

from repro.core import prepare_collection
from repro.synth import (
    CollectionProfile,
    SyntheticCollection,
    partition_report,
    profile_collection,
    suggest_small_threshold,
)


def main() -> None:
    collection = SyntheticCollection(CollectionProfile(
        name="design-study", models="a Legal-like collection",
        documents=2000, mean_doc_length=200, doc_length_sigma=0.6,
        vocab_size=50000, seed=77,
    ))

    print("Step 1: informetric profile of the collection")
    profile = profile_collection(collection)
    print(f"  tokens:              {profile.tokens:,}")
    print(f"  vocabulary:          {profile.vocabulary:,}")
    print(f"  singleton terms:     {profile.singleton_fraction:.0%}")
    print(f"  terms with <= 2 occ: {profile.doubleton_fraction:.0%}"
          "   <- the paper's 'nearly half of the terms'")
    print(f"  top 1% of terms hold {profile.top_percent_mass:.0%} of all tokens")
    print(f"  Zipf-Mandelbrot fit: s={profile.zipf_s:.2f}, q={profile.zipf_q:.1f}")
    print(f"  Heaps' law fit:      V = {profile.heaps_k:.1f} * N^{profile.heaps_beta:.2f}")

    print("\nStep 2: index the collection and measure its record sizes")
    prepared = prepare_collection(collection)
    sizes = prepared.stats.record_sizes
    print(f"  {len(sizes):,} inverted list records, "
          f"{min(sizes)}-{max(sizes):,} bytes, "
          f"compression {prepared.stats.compression_rate:.0%}")

    print("\nStep 3: derive the small-object boundary from the data")
    suggested = suggest_small_threshold(sizes, target_fraction=0.5)
    print(f"  50th percentile of record sizes: {suggested} bytes")
    print(f"  the paper's fixed threshold:     12 bytes")

    print("\nStep 4: audit the paper's 12 B / 4 KB partition on this data")
    report = partition_report(sizes, small_max=12, medium_max=4096)
    print(f"  {'pool':8s} {'records':>9s} {'share':>7s} {'bytes':>11s} {'share':>7s}")
    for name, row in report.items():
        print(f"  {name:8s} {row['records']:>9,d} {row['record_share']:>6.0%} "
              f"{row['bytes']:>11,d} {row['byte_share']:>6.0%}")
    print("\nThe small pool holds around half the records in a sliver of the")
    print("bytes — the fact the 255-objects-per-4KB-segment design exploits.")


if __name__ == "__main__":
    main()
