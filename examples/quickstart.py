#!/usr/bin/env python3
"""Quickstart: index a handful of documents and run structured queries.

Builds a tiny collection through the ordinary public API — a simulated
machine, a Mneme-backed inverted file, the ``IndexBuilder`` — and runs
INQUERY-style structured queries against it.

Run:  python examples/quickstart.py
"""

from repro.inquery import (
    BufferSizes,
    DEFAULT_STOPWORDS,
    Document,
    IndexBuilder,
    MnemeInvertedFile,
    RetrievalEngine,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem

DOCUMENTS = [
    Document(1, "brown93", (
        "Full-text information retrieval systems have unusual and "
        "challenging data management requirements for inverted file indexes."
    )),
    Document(2, "moss90", (
        "The Mneme persistent object store provides storage and retrieval "
        "of objects grouped into pools and physical segments."
    )),
    Document(3, "turtle91", (
        "The inference network retrieval model combines evidence from "
        "multiple document representations into a single belief."
    )),
    Document(4, "zobel92", (
        "Compressed inverted file indexes limit the storage cost of "
        "full-text database systems."
    )),
    Document(5, "stonebraker81", (
        "Operating system services such as buffer management are often a "
        "poor match for database management systems."
    )),
    Document(6, "callan92", (
        "INQUERY is a probabilistic information retrieval system based on "
        "a Bayesian inference network model."
    )),
]

QUERIES = [
    "inverted file index",
    "#and( persistent #or( object store ) )",
    "#phrase( inference network )",
    "#wsum( 3 retrieval 1 database )",
    "#not( database )",
]


def main() -> None:
    # A simulated machine: clock -> disk -> file system.
    clock = SimClock()
    fs = SimFileSystem(SimDisk(clock), cache_blocks=64)

    # The inverted file lives in a Mneme store with per-pool LRU buffers.
    store = MnemeInvertedFile(
        fs, buffer_sizes=BufferSizes(small=12288, medium=24576, large=65536)
    )

    builder = IndexBuilder(fs, store, stopwords=DEFAULT_STOPWORDS)
    builder.add_documents(DOCUMENTS)
    index = builder.finalize()
    print(f"Indexed {index.stats.documents} documents, "
          f"{index.stats.records} terms, "
          f"{index.stats.postings} postings "
          f"({index.stats.compression_rate:.0%} compression).")

    engine = RetrievalEngine(index, top_k=3)
    names = index.doctable.names
    for query in QUERIES:
        result = engine.run_query(query)
        print(f"\nQuery: {query}")
        for rank, (doc_id, belief) in enumerate(result.ranking, start=1):
            print(f"  {rank}. {names.get(doc_id, doc_id):>14s}  belief={belief:.3f}")
        if not result.ranking:
            print("  (no matching documents)")

    print(f"\nSimulated cost so far: wall={clock.time.wall_ms:.1f} ms "
          f"(user={clock.time.user_ms:.1f}, system+I/O={clock.time.system_io_ms:.1f})")
    print(f"Inverted file size: {store.file_size / 1024:.1f} KB across "
          f"{len(store.files)} simulated files")
    print("Pool objects:", store.pool_object_counts())


if __name__ == "__main__":
    main()
