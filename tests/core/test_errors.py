"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors
from repro.errors import (
    BTreeError,
    BadBlockError,
    ConfigError,
    DiskFullError,
    DuplicateKeyError,
    FileNotFoundInStoreError,
    IndexError_,
    InvalidIdentifierError,
    KeyNotFoundError,
    MnemeError,
    ObjectNotFoundError,
    PoolError,
    QueryError,
    RecoveryError,
    ReproError,
    StorageError,
)


def test_everything_derives_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, ReproError), name


def test_storage_hierarchy():
    assert issubclass(DiskFullError, StorageError)
    assert issubclass(BadBlockError, StorageError)
    assert issubclass(FileNotFoundInStoreError, StorageError)


def test_mneme_hierarchy():
    for cls in (ObjectNotFoundError, InvalidIdentifierError, PoolError, RecoveryError):
        assert issubclass(cls, MnemeError)


def test_key_errors_are_also_builtin_key_errors():
    assert issubclass(KeyNotFoundError, KeyError)
    assert issubclass(ObjectNotFoundError, KeyError)


def test_value_like_errors_are_builtin_value_errors():
    assert issubclass(InvalidIdentifierError, ValueError)
    assert issubclass(ConfigError, ValueError)


def test_btree_hierarchy():
    assert issubclass(KeyNotFoundError, BTreeError)
    assert issubclass(DuplicateKeyError, BTreeError)


def test_transaction_errors_are_mneme_errors():
    from repro.mneme import LockConflictError, TransactionAborted, TransactionError

    assert issubclass(TransactionError, MnemeError)
    assert issubclass(TransactionAborted, TransactionError)
    assert issubclass(LockConflictError, TransactionAborted)


def test_shed_errors_are_service_unavailable():
    from repro.errors import (
        DeadlineExceededError,
        RequestSheddedError,
        ServiceUnavailableError,
    )

    assert issubclass(RequestSheddedError, ServiceUnavailableError)
    assert issubclass(DeadlineExceededError, RequestSheddedError)
    shed = RequestSheddedError(
        reason="queue-full", query="#sum( a b )", priority="batch"
    )
    assert shed.reason == "queue-full"
    assert shed.priority == "batch"
    assert "#sum( a b )" in str(shed)
    assert "queue-full" in str(shed)
    expired = DeadlineExceededError(
        query="#sum( a )", priority="interactive",
        deadline_ms=12.5, now_ms=20.0,
    )
    assert expired.deadline_ms == 12.5
    assert expired.now_ms == 20.0
    assert "12.500" in str(expired) and "20.000" in str(expired)


def test_one_catch_all_at_the_api_boundary():
    """A caller can guard any library call with one except clause."""
    from repro.inquery import parse_query

    try:
        parse_query("#bogus( x )")
    except ReproError as error:
        assert isinstance(error, QueryError)
    else:
        raise AssertionError("expected a ReproError")


def test_index_error_shadow_safety():
    # The library's IndexError_ deliberately does not shadow builtins.
    assert IndexError_ is not IndexError
    assert not issubclass(IndexError_, IndexError)


def test_replication_errors_hierarchy():
    from repro.errors import (
        RebalanceInProgressError,
        ReplicaFailedError,
        ShardUnavailableError,
    )

    assert issubclass(ReplicaFailedError, ShardUnavailableError)
    assert issubclass(RebalanceInProgressError, ReproError)
    failed = ReplicaFailedError(1, 2, reason="mirror diverged")
    assert (failed.shard_id, failed.replica_id) == (1, 2)
    assert "replica 2" in str(failed) and "mirror diverged" in str(failed)
    stale = RebalanceInProgressError(
        reason="scheduler is stale", expected_epoch=0, actual_epoch=1
    )
    assert (stale.expected_epoch, stale.actual_epoch) == (0, 1)
    assert "epoch 0" in str(stale) and "epoch 1" in str(stale)
