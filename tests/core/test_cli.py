"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_profiles_lists_all(capsys):
    assert main(["profiles"]) == 0
    out = capsys.readouterr().out
    for profile in ("cacm-s", "legal-s", "tipster1-s", "tipster-s"):
        assert profile in out


def test_demo_runs_queries(capsys):
    assert main(["demo", "--profile", "cacm-s", "wa", "#sum( wb wc )"]) == 0
    out = capsys.readouterr().out
    assert out.count("Query:") == 2
    assert "belief=" in out


def test_demo_daat_engine(capsys):
    assert main(["demo", "--profile", "cacm-s", "--daat", "#sum( wa wb )"]) == 0
    assert "belief=" in capsys.readouterr().out


def test_demo_no_matches(capsys):
    assert main(["demo", "--profile", "cacm-s", "zzzzzz"]) == 0
    assert "no matching documents" in capsys.readouterr().out


def test_compare_prints_three_configs(capsys):
    assert main(["compare", "--profile", "cacm-s", "--set", "0"]) == 0
    out = capsys.readouterr().out
    for config in ("btree", "mneme-nocache", "mneme-cache"):
        assert config in out


def test_compare_bad_set_index(capsys):
    assert main(["compare", "--profile", "cacm-s", "--set", "9"]) == 2


def test_tables_subset(capsys):
    assert main(["tables", "1", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 2" in out
    assert "Table 3" not in out


def test_tables_unknown_number(capsys):
    assert main(["tables", "9"]) == 2


def test_figures_unknown_number(capsys):
    assert main(["figures", "9"]) == 2


def test_figure1(capsys):
    assert main(["figures", "1"]) == 0
    assert "Figure 1" in capsys.readouterr().out


def test_validate_clean(capsys):
    assert main(["validate", "--profile", "cacm-s", "--sample-every", "10"]) == 0
    assert "0 issue(s)" in capsys.readouterr().out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_informetrics_command(capsys):
    assert main(["informetrics", "--profile", "cacm-s"]) == 0
    out = capsys.readouterr().out
    assert "Zipf-Mandelbrot s" in out
    assert "Pool partition audit" in out


def test_evaluate_command(capsys):
    assert main(["evaluate", "--profile", "cacm-s", "--set", "0"]) == 0
    out = capsys.readouterr().out
    assert "mean average precision" in out
    assert "Interpolated precision" in out


def test_evaluate_bad_set(capsys):
    assert main(["evaluate", "--profile", "cacm-s", "--set", "7"]) == 2
