"""The shared latency/aggregation statistics helper."""

import pytest

from repro.core import (
    latency_summary,
    max_over_mean,
    median_of,
    percentile,
    relative_spread,
)


def test_median_of_odd_and_even():
    assert median_of([3.0, 1.0, 2.0]) == 2.0
    assert median_of([1.0, 2.0, 3.0, 4.0]) == 2.5


def test_percentile_nearest_rank_is_exact_on_the_sample():
    samples = [float(i) for i in range(1, 101)]
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 50) == 50.0
    assert percentile(samples, 95) == 95.0
    assert percentile(samples, 99) == 99.0
    assert percentile(samples, 100) == 100.0
    # Nearest rank: always a sample value, never an interpolation.
    assert percentile([1.0, 10.0], 50) in (1.0, 10.0)


def test_percentile_sorts_its_input():
    assert percentile([9.0, 1.0, 5.0], 50) == 5.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], -1)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_latency_summary_shape():
    digest = latency_summary([2.0, 4.0, 6.0, 8.0])
    assert digest["count"] == 4
    assert digest["mean_ms"] == 5.0
    assert digest["p50_ms"] == 4.0
    assert digest["max_ms"] == 8.0


def test_latency_summary_empty_is_all_zero():
    digest = latency_summary([])
    assert digest["count"] == 0
    assert all(value == 0.0 for key, value in digest.items() if key != "count")


def test_relative_spread():
    assert relative_spread([10.0, 10.0, 10.0]) == 0.0
    assert relative_spread([8.0, 10.0, 12.0]) == pytest.approx(0.4)
    assert relative_spread([0.0, 0.0]) == 0.0  # degenerate median


def test_max_over_mean():
    assert max_over_mean([]) == 1.0
    assert max_over_mean([0.0, 0.0]) == 1.0
    assert max_over_mean([1.0, 1.0, 1.0]) == 1.0
    assert max_over_mean([1.0, 3.0]) == 1.5
