"""Shared fixtures: one small prepared collection per test session."""

import pytest

from repro.core import prepare_collection
from repro.synth import CollectionProfile, QueryProfile, SyntheticCollection, generate_query_set


TINY = CollectionProfile(
    name="tiny", models="test", documents=250, mean_doc_length=70,
    doc_length_sigma=0.5, vocab_size=3500, seed=17,
)


@pytest.fixture(scope="session")
def tiny_collection():
    return SyntheticCollection(TINY)


@pytest.fixture(scope="session")
def tiny_prepared(tiny_collection):
    return prepare_collection(tiny_collection)


@pytest.fixture(scope="session")
def tiny_queries(tiny_collection):
    return generate_query_set(
        tiny_collection,
        QueryProfile(name="tiny-qs", style="natural", n_queries=12, mean_terms=4, seed=23),
    )
