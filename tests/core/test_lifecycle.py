"""Lifecycle integration: build, query, update, crash, recover, compact.

One index lives through everything the library supports, with
cross-backend equivalence checked at each stage.  This is the closest
test to "a downstream user's production week".
"""

import pytest

from repro.inquery import (
    CollectionIndex,
    DocumentAtATimeEngine,
    Document,
    IndexBuilder,
    LinkedMnemeInvertedFile,
    MnemeInvertedFile,
    RetrievalEngine,
    add_document_incremental,
    remove_document_incremental,
)
from repro.core import check_system
from repro.mneme import RedoLog, compact, recover
from repro.simdisk import SimClock, SimDisk, SimFileSystem
from repro.synth import CollectionProfile, SyntheticCollection, term_string


@pytest.fixture(scope="module")
def collection():
    return SyntheticCollection(CollectionProfile(
        name="life", models="t", documents=300, mean_doc_length=90,
        doc_length_sigma=0.5, vocab_size=6000, seed=99,
    ))


def build(collection, make_store):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    store = make_store(fs)
    builder = IndexBuilder(fs, store, stem_fn=str)
    builder.add_documents(collection.iter_documents())
    index = builder.finalize()
    index.save()
    return index


QUERIES = [
    f"#sum( {term_string(1)} {term_string(3)} {term_string(10)} )",
    f"#sum( {term_string(0)} {term_string(5)} )",
    f"#wsum( 2 {term_string(2)} 1 {term_string(7)} )",
]


def rankings(index, top_k=15):
    engine = RetrievalEngine(index, top_k=top_k)
    return [engine.run_query(q).ranking for q in QUERIES]


def test_full_lifecycle(collection):
    wal_holder = {}

    def linked_store(fs):
        wal_holder["wal"] = RedoLog(fs.create("invfile.wal"))
        return LinkedMnemeInvertedFile(fs, wal=wal_holder["wal"], chunk_bytes=2048)

    index = build(collection, linked_store)
    wal = wal_holder["wal"]
    reference = build(collection, MnemeInvertedFile)

    # Stage 1: backend equivalence at build time.
    assert rankings(index) == rankings(reference)

    # Stage 2: DAAT agrees on flat queries.
    daat = DocumentAtATimeEngine(index, top_k=15)
    for query, expected in zip(QUERIES[:2], rankings(index)[:2]):
        assert daat.run_query(query).ranking == expected

    # Stage 3: incremental updates on both backends stay equivalent.
    new_docs = [
        Document(1001, tokens=[term_string(1), term_string(3), "brandnew"]),
        Document(1002, tokens=[term_string(0)] * 4 + ["brandnew"]),
    ]
    for doc in new_docs:
        add_document_incremental(index, doc)
        add_document_incremental(reference, doc)
    remove_document_incremental(index, 7)
    remove_document_incremental(reference, 7)
    assert rankings(index) == rankings(reference)
    assert 1001 in RetrievalEngine(index).run_query("brandnew").doc_ids()

    # Stage 4: crash the main file; the WAL restores it.
    mfile = index.store.mfile
    image = mfile.main.read(0, mfile.main.size)
    mfile.main.write(16, b"\x00" * (mfile.main.size - 16))
    recover(wal, mfile.main)
    assert mfile.main.read(0, mfile.main.size) == image
    mfile.drop_user_caches()
    assert rankings(index) == rankings(reference)

    # Stage 5: compaction after the update churn.
    report = compact(mfile)
    assert report.bytes_reclaimed >= 0
    assert rankings(index) == rankings(reference)

    # Stage 6: the integrity checker signs off.
    audit = check_system(index, sample_every=3)
    assert audit.ok, [str(issue) for issue in audit.issues]

    # Stage 7: a fresh process opens the saved index and agrees.
    index.save()
    fs = index.fs
    reopened = CollectionIndex.open(
        fs, LinkedMnemeInvertedFile(fs, chunk_bytes=2048), stem_fn=str
    )
    assert rankings(reopened) == rankings(reference)
