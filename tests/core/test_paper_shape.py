"""Integration: the paper's headline shapes on a fast, scaled-down grid.

The benchmark suite asserts these on the full calibrated workloads; this
test asserts the same *orderings* on a miniature collection so that
``pytest tests/`` alone exercises the reproduction story end to end.
"""

import pytest

from repro.core import (
    build_systems,
    config_by_name,
    materialize,
    measure_run,
    prepare_collection,
)
from repro.inquery import RetrievalEngine
from repro.synth import (
    CollectionProfile,
    QueryProfile,
    SyntheticCollection,
    generate_query_set,
)


@pytest.fixture(scope="module")
def mini():
    collection = SyntheticCollection(CollectionProfile(
        name="mini-grid", models="test", documents=700, mean_doc_length=110,
        doc_length_sigma=0.5, vocab_size=14000, seed=88,
    ))
    prepared = prepare_collection(collection)
    queries = generate_query_set(collection, QueryProfile(
        name="mini-qs", style="natural", n_queries=30, mean_terms=6,
        reuse_rate=0.3, bias_alpha=1.3, seed=89,
    ))
    systems = build_systems(prepared)
    metrics = {
        name: measure_run(system, queries.queries, "mini-qs", keep_results=True)
        for name, system in systems.items()
    }
    return prepared, queries, systems, metrics


def test_rankings_identical_across_backends(mini):
    _prepared, _queries, _systems, metrics = mini
    rankings = {
        name: [r.ranking for r in m.results] for name, m in metrics.items()
    }
    assert rankings["btree"] == rankings["mneme-nocache"] == rankings["mneme-cache"]


def test_table3_ordering(mini):
    _p, _q, _s, metrics = mini
    assert metrics["mneme-nocache"].wall_s < metrics["btree"].wall_s
    assert metrics["mneme-cache"].wall_s <= metrics["mneme-nocache"].wall_s


def test_table4_ordering(mini):
    _p, _q, _s, metrics = mini
    assert metrics["mneme-nocache"].system_io_s < metrics["btree"].system_io_s
    assert metrics["mneme-cache"].system_io_s <= metrics["mneme-nocache"].system_io_s


def test_table5_accesses_per_lookup(mini):
    _p, _q, _s, metrics = mini
    assert metrics["btree"].accesses_per_lookup > 1.5
    assert 0.95 <= metrics["mneme-nocache"].accesses_per_lookup <= 1.3
    assert (
        metrics["mneme-cache"].accesses_per_lookup
        < metrics["mneme-nocache"].accesses_per_lookup
    )


def test_user_cpu_fixed_across_backends(mini):
    _p, _q, _s, metrics = mini
    values = [m.user_s for m in metrics.values()]
    assert max(values) == pytest.approx(min(values), rel=1e-9)


def test_caching_reduces_file_bytes(mini):
    _p, _q, _s, metrics = mini
    assert (
        metrics["mneme-cache"].bytes_from_file
        < metrics["mneme-nocache"].bytes_from_file
    )


def test_buffer_hits_present_only_with_cache(mini):
    _p, _q, _s, metrics = mini
    cached = metrics["mneme-cache"].buffer_stats
    uncached = metrics["mneme-nocache"].buffer_stats
    assert sum(s.hits for s in cached.values()) > 0
    assert sum(s.hits for s in uncached.values()) == 0


def test_linked_backend_joins_the_grid(mini):
    prepared, queries, _systems, metrics = mini
    system = materialize(prepared, config_by_name("mneme-linked"))
    run = measure_run(system, queries.queries, "mini-qs", keep_results=True)
    expected = [r.ranking for r in metrics["btree"].results]
    assert [r.ranking for r in run.results] == expected


def test_table2_sizing_applies(mini):
    prepared, _q, systems, _m = mini
    from repro.core import table2_buffer_sizes

    sizes = table2_buffer_sizes(prepared.largest_record)
    store = systems["mneme-cache"].index.store
    assert store.large.buffer.capacity_bytes == sizes.large
    assert store.medium.buffer.capacity_bytes == sizes.medium
    assert store.small.buffer.capacity_bytes == sizes.small
