"""Integration tests: materialization, cold start, and measurement."""

import pytest

from repro.core import (
    CONFIG_NAMES,
    build_systems,
    cold_start,
    config_by_name,
    improvement,
    materialize,
    measure_run,
)
from repro.inquery import RetrievalEngine


@pytest.fixture(scope="module")
def systems(tiny_prepared):
    return build_systems(tiny_prepared)


def test_all_configs_materialize(systems):
    assert set(systems) == set(CONFIG_NAMES)
    for system in systems.values():
        assert len(system.index.dictionary) > 0
        assert system.index.store.file_size > 0


def test_identical_rankings_across_configs(systems, tiny_queries):
    rankings = {}
    for name, system in systems.items():
        engine = RetrievalEngine(system.index, top_k=20)
        rankings[name] = [engine.run_query(q).ranking for q in tiny_queries.queries]
    assert rankings["btree"] == rankings["mneme-nocache"] == rankings["mneme-cache"]


def test_measure_run_collects_metrics(systems, tiny_queries):
    metrics = measure_run(systems["btree"], tiny_queries.queries, "tiny-qs")
    assert metrics.queries == len(tiny_queries)
    assert metrics.wall_s > 0
    assert metrics.user_s > 0
    assert metrics.system_io_s > 0
    assert metrics.wall_s == pytest.approx(metrics.user_s + metrics.system_io_s)
    assert metrics.record_lookups > 0
    assert metrics.io_inputs > 0
    assert metrics.bytes_from_file > 0
    assert metrics.accesses_per_lookup > 1.0  # B-tree: nodes + record


def test_measurement_deterministic(systems, tiny_queries):
    a = measure_run(systems["mneme-cache"], tiny_queries.queries, "tiny-qs")
    b = measure_run(systems["mneme-cache"], tiny_queries.queries, "tiny-qs")
    assert a.wall_s == b.wall_s
    assert a.io_inputs == b.io_inputs
    assert a.file_accesses == b.file_accesses


def test_user_cpu_identical_across_configs(systems, tiny_queries):
    times = {
        name: measure_run(system, tiny_queries.queries, "tiny-qs").user_s
        for name, system in systems.items()
    }
    values = list(times.values())
    assert max(values) == pytest.approx(min(values), rel=1e-9)


def test_mneme_accesses_per_lookup_near_one(systems, tiny_queries):
    metrics = measure_run(systems["mneme-nocache"], tiny_queries.queries, "tiny-qs")
    assert 0.95 <= metrics.accesses_per_lookup <= 1.3


def test_cache_reduces_accesses(systems, tiny_queries):
    nocache = measure_run(systems["mneme-nocache"], tiny_queries.queries, "q")
    cache = measure_run(systems["mneme-cache"], tiny_queries.queries, "q")
    assert cache.file_accesses <= nocache.file_accesses
    assert cache.bytes_from_file <= nocache.bytes_from_file


def test_cold_start_repeatable(systems, tiny_queries):
    system = systems["mneme-cache"]
    warm_engine = RetrievalEngine(system.index)
    warm_engine.run_batch(tiny_queries.queries)  # warm everything
    metrics = measure_run(system, tiny_queries.queries, "q", cold=True)
    # A cold-started run must hit the disk again.
    assert metrics.io_inputs > 0


def test_warm_run_cheaper_than_cold(systems, tiny_queries):
    system = systems["mneme-cache"]
    cold = measure_run(system, tiny_queries.queries, "q", cold=True)
    warm = measure_run(system, tiny_queries.queries, "q", cold=False)
    assert warm.io_inputs < cold.io_inputs
    assert warm.wall_s < cold.wall_s


def test_buffer_stats_only_for_mneme(systems, tiny_queries):
    btree = measure_run(systems["btree"], tiny_queries.queries, "q")
    mneme = measure_run(systems["mneme-cache"], tiny_queries.queries, "q")
    assert btree.buffer_stats == {}
    assert set(mneme.buffer_stats) == {"small", "medium", "large"}
    assert sum(s.refs for s in mneme.buffer_stats.values()) == mneme.record_lookups


def test_improvement_metric():
    assert improvement(10.0, 8.0) == pytest.approx(0.2)
    assert improvement(0.0, 5.0) == 0.0


def test_keep_results_flag(systems, tiny_queries):
    with_results = measure_run(systems["btree"], tiny_queries.queries, "q", keep_results=True)
    without = measure_run(systems["btree"], tiny_queries.queries, "q", keep_results=False)
    assert len(with_results.results) == len(tiny_queries)
    assert without.results == []
