"""Unit tests for configurations and Table 2 buffer sizing."""

import pytest

from repro.errors import ConfigError
from repro.core import CONFIG_NAMES, config_by_name, table2_buffer_sizes
from repro.core.config import SystemConfig


def test_three_named_configs():
    assert CONFIG_NAMES == ("btree", "mneme-nocache", "mneme-cache")
    assert config_by_name("btree").backend == "btree"
    assert config_by_name("mneme-nocache").backend == "mneme"
    assert not config_by_name("mneme-nocache").cached
    assert config_by_name("mneme-cache").cached


def test_unknown_config_rejected():
    with pytest.raises(ConfigError):
        config_by_name("oracle")


def test_btree_cannot_cache():
    with pytest.raises(ConfigError):
        SystemConfig(name="x", backend="btree", cached=True)


def test_unknown_backend_rejected():
    with pytest.raises(ConfigError):
        SystemConfig(name="x", backend="flatfile")


def test_overrides_pass_through():
    config = config_by_name("mneme-cache", fs_cache_blocks=7)
    assert config.fs_cache_blocks == 7


class TestTable2Heuristics:
    def test_large_is_three_times_largest_record(self):
        sizes = table2_buffer_sizes(largest_record=100_000)
        assert sizes.large == 300_000

    def test_medium_is_nine_percent_of_large(self):
        sizes = table2_buffer_sizes(largest_record=1_000_000)
        assert sizes.medium == int(0.09 * 3_000_000)

    def test_medium_floor_three_segments(self):
        # The CACM exception: 9% of a small large-buffer is not enough to
        # hold a single medium segment, so 3 segments is the floor.
        sizes = table2_buffer_sizes(largest_record=5_000)
        assert sizes.medium == 3 * 8192

    def test_small_is_three_segments(self):
        sizes = table2_buffer_sizes(largest_record=5_000)
        assert sizes.small == 3 * 4096

    def test_scales_with_segment_size(self):
        sizes = table2_buffer_sizes(largest_record=5_000, medium_segment_bytes=16384)
        assert sizes.medium == 3 * 16384

    def test_empty_collection_rejected(self):
        with pytest.raises(ConfigError):
            table2_buffer_sizes(largest_record=0)
