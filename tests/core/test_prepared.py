"""Tests for the prepared-collection indexing path."""

import pytest

from repro.core import config_by_name, materialize, prepare_collection
from repro.errors import ConfigError
from repro.inquery import (
    BTreeInvertedFile,
    IndexBuilder,
    decode_record,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem
from repro.synth import CollectionProfile, SyntheticCollection, term_string


def test_records_sorted_by_term_id(tiny_prepared):
    ids = [tid for tid, _record in tiny_prepared.records]
    assert ids == sorted(ids)
    assert ids[0] == 1


def test_df_ctf_consistent_with_records(tiny_prepared):
    for term_id, record in tiny_prepared.records[:200]:
        postings = decode_record(record)
        assert tiny_prepared.df[term_id] == len(postings)
        assert tiny_prepared.ctf[term_id] == sum(len(p) for _d, p in postings)


def test_stats_totals(tiny_prepared):
    stats = tiny_prepared.stats
    assert stats.postings == tiny_prepared.collection.total_tokens
    assert stats.records == len(tiny_prepared.records)
    assert stats.documents == len(tiny_prepared.collection)
    assert 0.3 < stats.compression_rate < 0.9


def test_largest_record(tiny_prepared):
    assert tiny_prepared.largest_record == max(tiny_prepared.stats.record_sizes)


def test_docs_of_rank(tiny_prepared):
    counts = tiny_prepared.collection.term_counts()
    rank = int(counts.argmax())
    docs = tiny_prepared.docs_of_rank(rank)
    assert len(docs) == tiny_prepared.df[tiny_prepared.term_id_of_rank[rank]]
    assert tiny_prepared.docs_of_rank(10**7) == ()


def test_record_size_of_rank(tiny_prepared):
    rank = next(iter(tiny_prepared.term_id_of_rank))
    term_id = tiny_prepared.term_id_of_rank[rank]
    index = [tid for tid, _r in tiny_prepared.records].index(term_id)
    assert tiny_prepared.record_size_of_rank(rank) == len(tiny_prepared.records[index][1])
    assert tiny_prepared.record_size_of_rank(10**7) == 0


def test_empty_collection_rejected():
    empty = SyntheticCollection(
        CollectionProfile(
            name="e", models="t", documents=1, mean_doc_length=5,
            doc_length_sigma=0.0, vocab_size=10, seed=1,
        )
    )
    empty.doc_tokens[0] = empty.doc_tokens[0][:0]
    empty.doc_lengths[0] = 0
    with pytest.raises(ConfigError):
        prepare_collection(empty)


def test_prepared_path_matches_index_builder(tiny_collection, tiny_prepared):
    """The fast numpy path and the ordinary IndexBuilder agree exactly."""
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=256)
    builder = IndexBuilder(fs, BTreeInvertedFile(fs), stem_fn=str, run_limit=50_000)
    builder.add_documents(tiny_collection.iter_documents())
    reference = builder.finalize()

    assert len(reference.dictionary) == len(tiny_prepared.records)
    for rank, term_id in list(tiny_prepared.term_id_of_rank.items())[:300]:
        entry = reference.dictionary.lookup(term_string(rank))
        assert entry is not None
        assert entry.df == tiny_prepared.df[term_id]
        assert entry.ctf == tiny_prepared.ctf[term_id]
        index = term_id - 1  # records are dense in term-id order
        assert tiny_prepared.records[index][0] == term_id
        assert reference.store.fetch(entry.storage_key) == tiny_prepared.records[index][1]


def test_materialized_dictionary_matches(tiny_prepared):
    system = materialize(tiny_prepared, config_by_name("mneme-nocache"))
    assert len(system.index.dictionary) == len(tiny_prepared.records)
    for rank, term_id in list(tiny_prepared.term_id_of_rank.items())[:100]:
        entry = system.index.dictionary.lookup(term_string(rank))
        assert entry.term_id == term_id
        assert entry.df == tiny_prepared.df[term_id]
        record = system.index.store.fetch(entry.storage_key)
        assert decode_record(record) == decode_record(
            tiny_prepared.records[term_id - 1][1]
        )
