"""Tests for the integrity checker — including corruption detection."""

import pytest

from repro.core import (
    check_index,
    check_store,
    check_system,
    config_by_name,
    materialize,
)
from repro.inquery import Document, IndexBuilder, MnemeInvertedFile
from repro.simdisk import SimClock, SimDisk, SimFileSystem

from .conftest import TINY


def small_mneme_index():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=128)
    store = MnemeInvertedFile(fs)
    builder = IndexBuilder(fs, store, stem_fn=str)
    for doc_id in range(1, 40):
        builder.add_document(
            Document(doc_id, tokens=[f"t{doc_id % 9}", "shared", f"u{doc_id}"])
        )
    return builder.finalize()


class TestCleanSystems:
    def test_fresh_index_is_clean(self):
        index = small_mneme_index()
        report = check_system(index)
        assert report.ok, [str(i) for i in report.issues]
        assert report.checks > 100

    def test_all_backends_clean(self, tiny_prepared):
        for name in ("btree", "mneme-nocache", "mneme-cache", "mneme-linked"):
            system = materialize(tiny_prepared, config_by_name(name))
            report = check_system(system.index, sample_every=5)
            assert report.ok, (name, [str(i) for i in report.issues])

    def test_clean_after_updates(self):
        from repro.inquery import add_document_incremental, remove_document_incremental

        index = small_mneme_index()
        add_document_incremental(index, Document(99, tokens=["shared", "fresh"]))
        remove_document_incremental(index, 3)
        report = check_system(index)
        assert report.ok, [str(i) for i in report.issues]

    def test_clean_after_gc_and_compaction(self):
        from repro.mneme import compact

        index = small_mneme_index()
        store = index.store
        compact(store.mfile)
        report = check_system(index)
        assert report.ok, [str(i) for i in report.issues]


class TestCorruptionDetection:
    def test_segment_corruption_detected(self):
        index = small_mneme_index()
        store = index.store
        # Flip bytes in the middle of the main file's segment area.
        main = store.mfile.main
        main.write(main.size // 2, b"\xde\xad\xbe\xef" * 4)
        store.mfile.drop_user_caches()
        report = check_store(store.mfile)
        assert not report.ok
        assert any("undecodable" in issue.message for issue in report.issues)

    def test_wrong_df_detected(self):
        index = small_mneme_index()
        entry = index.dictionary.lookup("shared")
        entry.df += 5
        report = check_index(index)
        assert any("df" in issue.message for issue in report.issues)

    def test_wrong_ctf_detected(self):
        index = small_mneme_index()
        entry = index.dictionary.lookup("shared")
        entry.ctf -= 1
        report = check_index(index)
        assert any("ctf" in issue.message for issue in report.issues)

    def test_dangling_storage_key_detected(self):
        index = small_mneme_index()
        entry = index.dictionary.lookup("shared")
        entry.storage_key = 0
        report = check_index(index)
        assert any("no storage key" in issue.message for issue in report.issues)

    def test_unknown_document_detected(self):
        index = small_mneme_index()
        index.doctable.remove(5)
        report = check_index(index)
        assert any("unknown document" in issue.message for issue in report.issues)

    def test_issue_rendering(self):
        index = small_mneme_index()
        index.dictionary.lookup("shared").df += 1
        report = check_index(index)
        text = str(report.issues[0])
        assert "shared" in text


class TestSampling:
    def test_sample_every_reduces_checks(self):
        index = small_mneme_index()
        full = check_index(index, sample_every=1)
        sampled = check_index(index, sample_every=7)
        assert sampled.checks < full.checks
        assert sampled.ok

    def test_bad_sample_every_coerced(self):
        index = small_mneme_index()
        report = check_index(index, sample_every=0)
        assert report.ok
