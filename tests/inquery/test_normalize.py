"""The shared normalization pipeline and the canonical query key.

The load-bearing claim: the cache key and the engines normalize
*identically*, because they call the same helper.  These tests pin the
agreement down from both ends — term-level against the index's
dictionary lookup, and tree-level canonical-key semantics.
"""

import pytest

from repro.errors import QueryError
from repro.inquery import (
    STOPPED_TERM,
    canonical_query_key,
    normalize_term,
    normalize_tree,
    render_canonical,
)
from repro.inquery.query import OpNode, TermNode, parse_query
from repro.inquery.stem import stem

STOPS = frozenset({"the", "a", "of"})


def test_normalize_term_lowercases_and_stems():
    assert normalize_term("Retrieval") == stem("retrieval")
    assert normalize_term("INDEXING") == normalize_term("indexing")


def test_normalize_term_drops_stopwords_case_insensitively():
    assert normalize_term("The", STOPS) is None
    assert normalize_term("THE", STOPS) is None
    assert normalize_term("them", STOPS) is not None


def test_key_is_case_insensitive():
    assert canonical_query_key("#sum(Records Store)") == canonical_query_key(
        "#sum(records store)"
    )


def test_stopword_choice_collapses_to_one_key():
    # Queries that differ only in *which* stopword they used evaluate
    # identically (no dictionary entry either way), so they share a key.
    key_the = canonical_query_key("#sum(the records)", STOPS)
    key_of = canonical_query_key("#sum(of records)", STOPS)
    assert key_the == key_of
    assert STOPPED_TERM in key_the


def test_stopped_marker_cannot_collide_with_a_real_term():
    assert "\x00" in STOPPED_TERM
    assert normalize_term(STOPPED_TERM.strip("\x00")) != STOPPED_TERM


def test_distinct_queries_keep_distinct_keys():
    assert canonical_query_key("#sum(alpha beta)") != canonical_query_key(
        "#sum(alpha gamma)"
    )


def test_child_order_is_never_reordered():
    # Belief combination folds floats in child order; reordering could
    # change low-order bits, so "same bag of terms" is NOT "same key".
    assert canonical_query_key("#sum(alpha beta)") != canonical_query_key(
        "#sum(beta alpha)"
    )


def test_operator_structure_is_preserved():
    for text in (
        "#and(alpha beta)",
        "#or(alpha beta)",
        "#not(alpha)",
        "#od2(alpha beta)",
        "#uw5(alpha beta)",
    ):
        normalized = normalize_tree(parse_query(text))
        assert render_canonical(normalized) == render_canonical(
            normalize_tree(parse_query(text.upper()))
        )


def test_wsum_weights_render_exactly():
    close_a = OpNode(
        op="wsum",
        children=(TermNode(term="alpha"), TermNode(term="beta")),
        weights=(0.1, 0.30000000000000004),
    )
    close_b = OpNode(
        op="wsum",
        children=(TermNode(term="alpha"), TermNode(term="beta")),
        weights=(0.1, 0.3),
    )
    # %g-style rendering would collide these two; repr cannot.
    assert render_canonical(close_a) != render_canonical(close_b)


def test_proximity_window_is_part_of_the_key():
    assert canonical_query_key("#od2(alpha beta)") != canonical_query_key(
        "#od3(alpha beta)"
    )


def test_key_raises_exactly_where_the_parser_does():
    with pytest.raises(QueryError):
        canonical_query_key("#sum(unbalanced")


def test_term_entry_agrees_with_normalize_term(mneme_index):
    index = mneme_index
    for raw in ("The", "inverted", "RECORDS", "store", "a", "belief"):
        normalized = normalize_term(raw, index.stopwords, index.stem_fn)
        entry = index.term_entry(raw)
        if normalized is None:
            assert entry is None
        else:
            assert entry is index.term_entry(normalized)
            # Case variants resolve to the same dictionary entry.
            assert index.term_entry(raw.upper()) is entry


def test_builder_and_lookup_share_the_pipeline(mneme_index):
    # Every indexed dictionary term is already in canonical form: the
    # builder wrote it through the same normalize_term the lookup uses.
    index = mneme_index
    for entry in list(index.dictionary.entries())[:50]:
        assert (
            normalize_term(entry.term, index.stopwords, index.stem_fn)
            == entry.term
        )
