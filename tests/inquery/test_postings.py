"""Unit tests for record encoding and compression."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.inquery import (
    decode_header,
    decode_record,
    encode_record,
    merge_records,
    remove_document,
    uncompressed_size,
    vbyte_decode,
    vbyte_encode,
    vbyte_length,
)


class TestVByte:
    def test_small_values_one_byte(self):
        out = bytearray()
        vbyte_encode(127, out)
        assert len(out) == 1

    def test_roundtrip_samples(self):
        for value in (0, 1, 127, 128, 300, 16383, 16384, 2**28, 2**31):
            out = bytearray()
            vbyte_encode(value, out)
            decoded, pos = vbyte_decode(bytes(out), 0)
            assert decoded == value
            assert pos == len(out) == vbyte_length(value)

    def test_negative_rejected(self):
        with pytest.raises(IndexError_):
            vbyte_encode(-1, bytearray())

    def test_truncated_detected(self):
        out = bytearray()
        vbyte_encode(300, out)
        with pytest.raises(IndexError_):
            vbyte_decode(bytes(out[:-1]), 0)

    @given(values=st.lists(st.integers(min_value=0, max_value=2**40), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_stream_roundtrip(self, values):
        out = bytearray()
        for value in values:
            vbyte_encode(value, out)
        pos = 0
        decoded = []
        for _ in values:
            value, pos = vbyte_decode(bytes(out), pos)
            decoded.append(value)
        assert decoded == values
        assert pos == len(out)


class TestRecordCodec:
    def test_roundtrip(self):
        postings = [(3, (1, 5, 9)), (7, (0,)), (100, (2, 3))]
        record = encode_record(postings)
        assert decode_record(record) == postings

    def test_header(self):
        postings = [(3, (1, 5, 9)), (7, (0,))]
        header = decode_header(encode_record(postings))
        assert header.df == 2
        assert header.ctf == 4

    def test_empty_record(self):
        record = encode_record([])
        assert decode_record(record) == []
        assert decode_header(record).df == 0

    def test_single_occurrence_fits_small_pool(self):
        # The design point: a hapax legomenon's record is tiny (<= 12 B),
        # landing in the small object pool.
        record = encode_record([(50, (17,))])
        assert len(record) <= 12

    def test_out_of_order_docs_rejected(self):
        with pytest.raises(IndexError_):
            encode_record([(5, (1,)), (3, (1,))])
        with pytest.raises(IndexError_):
            encode_record([(5, (1,)), (5, (2,))])

    def test_empty_positions_rejected(self):
        with pytest.raises(IndexError_):
            encode_record([(5, ())])

    def test_out_of_order_positions_rejected(self):
        with pytest.raises(IndexError_):
            encode_record([(5, (3, 1))])
        with pytest.raises(IndexError_):
            encode_record([(5, (3, 3))])

    def test_compression_beats_uncompressed(self):
        postings = [(d, (d % 7, d % 7 + 3)) for d in range(0, 3000, 3)]
        record = encode_record(postings)
        assert len(record) < uncompressed_size(postings)
        # Delta+v-byte should save well over a third on clustered ids.
        assert len(record) / uncompressed_size(postings) < 0.65

    @given(
        postings=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**6),
                st.lists(st.integers(min_value=0, max_value=10**5), min_size=1, max_size=8, unique=True),
            ),
            max_size=30,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, postings):
        canonical = sorted((d, tuple(sorted(p))) for d, p in postings)
        record = encode_record(canonical)
        assert decode_record(record) == canonical


class TestRecordUpdate:
    def test_merge_inserts_in_order(self):
        base = encode_record([(1, (0,)), (5, (2,))])
        merged = merge_records(base, [(3, (7,)), (9, (1, 2))])
        assert decode_record(merged) == [(1, (0,)), (3, (7,)), (5, (2,)), (9, (1, 2))]

    def test_merge_replaces_existing_doc(self):
        base = encode_record([(1, (0,)), (5, (2,))])
        merged = merge_records(base, [(5, (8, 9))])
        assert decode_record(merged) == [(1, (0,)), (5, (8, 9))]

    def test_remove_document(self):
        base = encode_record([(1, (0,)), (5, (2,)), (9, (4,))])
        out = remove_document(base, [5])
        assert decode_record(out) == [(1, (0,)), (9, (4,))]

    def test_remove_all_documents(self):
        base = encode_record([(1, (0,))])
        out = remove_document(base, [1])
        assert decode_record(out) == []
