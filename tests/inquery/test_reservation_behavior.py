"""Focused tests for the reservation optimization's mechanics."""

import pytest

from repro.inquery import (
    BufferSizes,
    Document,
    IndexBuilder,
    MnemeInvertedFile,
    RetrievalEngine,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


def build_index_with_tiny_large_buffer():
    """Several large records, a buffer that holds roughly one of them."""
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=8)
    store = MnemeInvertedFile(fs, medium_max_bytes=64)
    builder = IndexBuilder(fs, store, stem_fn=str)
    for doc_id in range(1, 120):
        tokens = []
        for term in ("alpha", "beta", "gamma"):
            tokens.extend([term] * 2)
        tokens.append(f"unique{doc_id}")
        builder.add_document(Document(doc_id, tokens=tokens))
    index = builder.finalize()
    # Each of alpha/beta/gamma has ~119 postings (> 64 B record -> large
    # pool).  Budget the large buffer for about one record.
    record_size = len(store.fetch(index.term_entry("alpha").storage_key))
    store.attach_buffers(
        BufferSizes(small=4096, medium=8192, large=int(record_size * 1.4))
    )
    return index, store


def test_reservation_protects_repeated_term_within_query():
    index, store = build_index_with_tiny_large_buffer()
    engine = RetrievalEngine(index, use_reservation=True)
    # Warm the buffer with alpha.
    engine.run_query("alpha")
    hits_before = store.buffer_stats()["large"].hits
    # alpha appears twice around an eviction-inducing middle term.  The
    # reservation pass pins alpha's (resident) segment up front, so the
    # second use hits even after beta/gamma churn the small buffer.
    engine.run_query("#sum( alpha beta gamma alpha )")
    hits_with = store.buffer_stats()["large"].hits - hits_before

    index2, store2 = build_index_with_tiny_large_buffer()
    engine2 = RetrievalEngine(index2, use_reservation=False)
    engine2.run_query("alpha")
    hits_before2 = store2.buffer_stats()["large"].hits
    engine2.run_query("#sum( alpha beta gamma alpha )")
    hits_without = store2.buffer_stats()["large"].hits - hits_before2

    assert hits_with >= hits_without
    assert hits_with >= 1  # the pinned first use hit


def test_reservations_released_after_query():
    index, store = build_index_with_tiny_large_buffer()
    engine = RetrievalEngine(index, use_reservation=True)
    engine.run_query("alpha")
    engine.run_query("#sum( alpha beta )")
    # After the query, nothing is pinned: other segments can evict alpha.
    buffer = store.large.buffer
    assert not any(
        buffer.reserved(key) for key in list(getattr(buffer, "_entries", {}))
    )


def test_reservation_of_missing_terms_is_harmless():
    index, _store = build_index_with_tiny_large_buffer()
    engine = RetrievalEngine(index, use_reservation=True)
    result = engine.run_query("#sum( alpha nosuchterm )")
    assert result.ranking  # evaluated normally


def test_released_even_when_query_fails():
    from repro.errors import QueryError

    index, store = build_index_with_tiny_large_buffer()
    engine = RetrievalEngine(index, use_reservation=True)
    engine.run_query("alpha")
    with pytest.raises(QueryError):
        engine.run_query("#bogus( alpha )")  # parse fails before reserve
    # Reserve-then-fail path: force an evaluation error after reservation.
    buffer = store.large.buffer
    assert not any(
        buffer.reserved(key) for key in list(getattr(buffer, "_entries", {}))
    )
