"""Unit tests for tokenization, stemming, and stop words."""

from repro.inquery import DEFAULT_STOPWORDS, is_stopword, stem, tokenize


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("The Quick, Brown Fox!") == ["the", "quick", "brown", "fox"]

    def test_numbers_kept(self):
        assert tokenize("section 42(b) of 1993") == ["section", "42", "b", "of", "1993"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("  ...  ") == []

    def test_punctuation_separates(self):
        assert tokenize("object-oriented database") == ["object", "oriented", "database"]


class TestStem:
    def test_plural(self):
        assert stem("databases") == stem("database")

    def test_ing(self):
        assert stem("indexing") == "index"

    def test_ed(self):
        assert stem("indexed") == "index"

    def test_short_words_unchanged(self):
        assert stem("cat") == "cat"
        assert stem("is") == "is"

    def test_digits_unchanged(self):
        assert stem("1990s") == "1990s"

    def test_never_produces_tiny_stem(self):
        assert len(stem("aces")) >= 3

    def test_conflates_related_forms(self):
        assert stem("retrieval") == "retrieval"  # no matching suffix
        assert stem("managements") == stem("management")

    def test_idempotent_on_samples(self):
        for word in ("databases", "indexing", "caching", "queries", "systems"):
            once = stem(word)
            assert stem(once) == once


class TestStopwords:
    def test_common_words_stopped(self):
        for word in ("the", "and", "of", "is"):
            assert is_stopword(word)

    def test_content_words_kept(self):
        for word in ("database", "retrieval", "object"):
            assert not is_stopword(word)

    def test_custom_set(self):
        assert is_stopword("zzz", frozenset({"zzz"}))
        assert not is_stopword("the", frozenset({"zzz"}))

    def test_default_list_reasonable_size(self):
        assert 50 <= len(DEFAULT_STOPWORDS) <= 200
