"""Unit tests for documents and the document table."""

import pytest

from repro.errors import IndexError_
from repro.inquery import DocTable, Document, tokenize
from repro.simdisk import SimClock, SimDisk, SimFileSystem


def test_document_term_stream_from_text():
    doc = Document(1, text="Hello, World")
    assert doc.term_stream(tokenize) == ["hello", "world"]


def test_document_term_stream_pretokenized():
    doc = Document(1, tokens=["a", "b"])
    assert doc.term_stream(tokenize) == ["a", "b"]


def test_doctable_basic():
    table = DocTable()
    table.add(1, 100, "doc-one")
    table.add(2, 50)
    assert len(table) == 2
    assert 1 in table and 3 not in table
    assert table.length_of(1) == 100
    assert table.average_length == 75.0
    assert table.total_length == 150


def test_duplicate_rejected():
    table = DocTable()
    table.add(1, 10)
    with pytest.raises(IndexError_):
        table.add(1, 20)


def test_unknown_length_rejected():
    with pytest.raises(IndexError_):
        DocTable().length_of(9)


def test_remove():
    table = DocTable()
    table.add(1, 10, "x")
    table.remove(1)
    assert 1 not in table
    table.remove(1)  # idempotent


def test_empty_average():
    assert DocTable().average_length == 0.0


def test_save_load_roundtrip():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=16)
    table = DocTable()
    for i in range(1, 101):
        table.add(i, i * 3, f"doc{i}" if i % 2 else "")
    file = fs.create("docs")
    table.save(file)
    loaded = DocTable.load(file)
    assert len(loaded) == 100
    assert loaded.length_of(50) == 150
    assert loaded.names.get(51) == "doc51"
    assert 52 not in loaded.names
