"""Unit tests for the open-chaining hash dictionary."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.inquery import HashDictionary
from repro.simdisk import SimClock, SimDisk, SimFileSystem


def test_add_assigns_sequential_ids():
    d = HashDictionary()
    a = d.add("alpha")
    b = d.add("beta")
    assert a.term_id == 1
    assert b.term_id == 2


def test_add_is_idempotent():
    d = HashDictionary()
    first = d.add("alpha")
    second = d.add("alpha")
    assert first is second
    assert len(d) == 1


def test_lookup_missing_returns_none():
    assert HashDictionary().lookup("ghost") is None


def test_lookup_finds_chained_entries():
    d = HashDictionary(initial_buckets=1)  # force every term into one chain
    for term in ("a", "b", "c", "d"):
        d.add(term)
    for term in ("a", "b", "c", "d"):
        assert d.lookup(term).term == term


def test_grows_when_overloaded():
    d = HashDictionary(initial_buckets=2)
    for i in range(100):
        d.add(f"term{i}")
    assert d.bucket_count > 2
    assert len(d) == 100
    for i in range(100):
        assert d.lookup(f"term{i}") is not None


def test_ids_stable_across_growth():
    d = HashDictionary(initial_buckets=2)
    ids = {f"term{i}": d.add(f"term{i}").term_id for i in range(50)}
    for term, term_id in ids.items():
        assert d.lookup(term).term_id == term_id


def test_entries_iterates_all():
    d = HashDictionary()
    terms = {f"t{i}" for i in range(20)}
    for term in terms:
        d.add(term)
    assert {e.term for e in d.entries()} == terms


def test_by_id():
    d = HashDictionary()
    d.add("x")
    d.add("y")
    by_id = d.by_id()
    assert by_id[1].term == "x"
    assert by_id[2].term == "y"


def test_needs_a_bucket():
    with pytest.raises(IndexError_):
        HashDictionary(initial_buckets=0)


def test_save_load_roundtrip():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=32)
    d = HashDictionary()
    for i in range(200):
        entry = d.add(f"word{i}")
        entry.df = i
        entry.ctf = i * 3
        entry.storage_key = i * 7 + 1
    file = fs.create("dict")
    d.save(file)
    loaded = HashDictionary.load(file)
    assert len(loaded) == 200
    for i in range(200):
        entry = loaded.lookup(f"word{i}")
        assert entry.term_id == d.lookup(f"word{i}").term_id
        assert (entry.df, entry.ctf, entry.storage_key) == (i, i * 3, i * 7 + 1)
    # New terms continue the id sequence.
    assert loaded.add("brand-new").term_id == d._next_id


def test_load_truncated_file_rejected():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=32)
    file = fs.create("bad")
    file.write(0, b"\x01")
    with pytest.raises(IndexError_):
        HashDictionary.load(file)


@given(terms=st.lists(st.text(alphabet="abcdefghij", min_size=1, max_size=8), max_size=80))
@settings(max_examples=40, deadline=None)
def test_matches_dict_model(terms):
    d = HashDictionary(initial_buckets=4)
    model = {}
    for term in terms:
        entry = d.add(term)
        if term in model:
            assert entry.term_id == model[term]
        else:
            model[term] = entry.term_id
    assert len(d) == len(model)
    assert len(set(model.values())) == len(model)  # ids unique
    for term, term_id in model.items():
        assert d.lookup(term).term_id == term_id
