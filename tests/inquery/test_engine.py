"""Integration tests: end-to-end retrieval on every backend."""

import pytest

from repro.inquery import RetrievalEngine, evaluate_ranking

from .conftest import build_index


def test_simple_query_finds_relevant_docs(engine):
    result = engine.run_query("information retrieval")
    assert result.doc_ids()[0] in (1, 9)  # the two docs about IR
    assert {1, 9} <= set(result.doc_ids()[:4])


def test_phrase_query(engine):
    result = engine.run_query("#phrase( object store )")
    top = set(result.doc_ids()[:3])
    assert 2 in top or 10 in top


def test_and_query(engine):
    result = engine.run_query("#and( buffer cache )")
    assert result.doc_ids()[0] in (4, 10)


def test_unknown_terms_rank_nothing(engine):
    result = engine.run_query("zzz qqq")
    assert result.ranking == []


def test_scores_monotone(engine):
    result = engine.run_query("inverted file record")
    scores = [s for _d, s in result.ranking]
    assert scores == sorted(scores, reverse=True)


def test_top_k_respected(any_index):
    engine = RetrievalEngine(any_index, top_k=3)
    result = engine.run_query("document")
    assert len(result.ranking) <= 3


def test_batch_mode(engine):
    results = engine.run_batch(["information", "buffer", "legal case"])
    assert len(results) == 3
    assert results[2].doc_ids()[0] == 8


def test_all_backends_rank_identically():
    """The paper's premise: recall/precision are fixed across backends."""
    queries = [
        "information retrieval",
        "#and( buffer cache )",
        "#phrase( object store )",
        "#wsum( 2 inverted 1 file )",
        "#or( legal database )",
        "document collection index",
    ]
    rankings = {}
    for backend in ("btree", "mneme", "mneme-cache"):
        index = build_index(backend)
        engine = RetrievalEngine(index, top_k=10)
        rankings[backend] = [engine.run_query(q).ranking for q in queries]
    assert rankings["btree"] == rankings["mneme"] == rankings["mneme-cache"]


def test_identical_rankings_mean_identical_precision():
    index_a = build_index("btree")
    index_b = build_index("mneme-cache")
    relevant = {1, 9}
    ranking_a = RetrievalEngine(index_a).run_query("information retrieval").doc_ids()
    ranking_b = RetrievalEngine(index_b).run_query("information retrieval").doc_ids()
    eval_a = evaluate_ranking(ranking_a, relevant)
    eval_b = evaluate_ranking(ranking_b, relevant)
    assert eval_a == eval_b
    assert eval_a.average_precision > 0.5


def test_user_cpu_charged(any_index):
    clock = any_index.fs.disk.clock
    engine = RetrievalEngine(any_index)
    before = clock.time.user_ms
    engine.run_query("information retrieval systems")
    assert clock.time.user_ms > before


def test_user_cpu_comparable_across_backends():
    """User CPU "varies by less than 1% across the versions"."""
    times = {}
    for backend in ("btree", "mneme", "mneme-cache"):
        index = build_index(backend)
        clock = index.fs.disk.clock
        engine = RetrievalEngine(index)
        start = clock.snapshot()
        engine.run_batch(["information retrieval", "#and( buffer cache )"])
        times[backend] = clock.since(start).user_ms
    values = list(times.values())
    assert max(values) - min(values) <= 0.01 * max(values)


def test_reservation_scan_runs_without_cache(mneme_index):
    # Reservation against NullBuffer pools is a harmless no-op.
    engine = RetrievalEngine(mneme_index, use_reservation=True)
    result = engine.run_query("buffer cache segments")
    assert result.ranking


def test_repeated_query_hits_buffers():
    index = build_index("mneme-cache")
    engine = RetrievalEngine(index)
    engine.run_query("inverted file records")
    stats_before = {
        name: s.copy() for name, s in index.store.buffer_stats().items()
    }
    engine.run_query("inverted file records")
    stats_after = index.store.buffer_stats()
    hits = sum(
        stats_after[name].hits - stats_before[name].hits for name in stats_after
    )
    assert hits > 0


def test_no_cache_never_hits(mneme_index):
    engine = RetrievalEngine(mneme_index)
    engine.run_query("inverted file records")
    engine.run_query("inverted file records")
    stats = mneme_index.store.buffer_stats()
    assert all(s.hits == 0 for s in stats.values())


def test_record_lookup_counter(any_index):
    engine = RetrievalEngine(any_index)
    before = any_index.store.record_lookups
    engine.run_query("buffer cache")
    assert any_index.store.record_lookups - before == 2
