"""Durability tests: incremental updates survive a reopen and a crash."""

from repro.inquery import (
    CollectionIndex,
    DocTable,
    Document,
    HashDictionary,
    MnemeInvertedFile,
    RetrievalEngine,
    add_document_incremental,
    decode_record,
)
from repro.mneme import RedoLog, recover

from .conftest import build_index


def reopen(index):
    """A fresh process view: new store and dictionary from the files."""
    fs = index.fs
    store = MnemeInvertedFile(fs)
    return CollectionIndex(
        fs=fs,
        dictionary=HashDictionary.load(fs.open("index.dict")),
        doctable=DocTable.load(fs.open("index.docs")),
        store=store,
        stats=index.stats,
        stopwords=index.stopwords,
        stem_fn=index.stem_fn,
    )


def test_incremental_add_is_durable_without_explicit_flush():
    index = build_index("mneme")
    add_document_incremental(
        index, Document(11, "d11", "durability matters for incremental updates")
    )
    index.save()  # persists the dictionary/doctable; records were already flushed
    fresh = reopen(index)
    entry = fresh.term_entry("durability")
    assert entry is not None
    record = fresh.store.fetch(entry.storage_key)
    assert 11 in dict(decode_record(record))
    engine = RetrievalEngine(fresh)
    assert 11 in engine.run_query("#and( durability incremental )").doc_ids()


def test_incremental_add_reaches_the_wal():
    from repro.inquery import DEFAULT_STOPWORDS, IndexBuilder
    from repro.simdisk import SimClock, SimDisk, SimFileSystem

    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    wal = RedoLog(fs.create("invfile.wal"))
    store = MnemeInvertedFile(fs, wal=wal)
    builder = IndexBuilder(fs, store, stopwords=DEFAULT_STOPWORDS)
    builder.add_document(Document(1, "a", "contract dispute over licensing"))
    index = builder.finalize()
    records_after_build = len(wal.records()[0])
    add_document_incremental(index, Document(2, "b", "another dispute entirely"))
    records_after_add = len(wal.records()[0])
    assert records_after_add > records_after_build

    # Crash: lose the main file body; the redo log restores it.
    image = store.mfile.main.read(0, store.mfile.main.size)
    store.mfile.main.write(16, b"\x00" * (store.mfile.main.size - 16))
    assert store.mfile.main.read(0, store.mfile.main.size) != image
    recover(wal, store.mfile.main)
    assert store.mfile.main.read(0, store.mfile.main.size) == image
