"""Unit tests for index construction on both backends."""

import pytest

from repro.errors import IndexError_
from repro.inquery import (
    BTreeInvertedFile,
    Document,
    IndexBuilder,
    decode_record,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem

from .conftest import DOCS, build_index


def test_every_term_gets_a_record(any_index):
    for entry in any_index.dictionary.entries():
        assert entry.storage_key != 0
        record = any_index.store.fetch(entry.storage_key)
        postings = decode_record(record)
        assert len(postings) == entry.df
        assert sum(len(p) for _d, p in postings) == entry.ctf


def test_stopwords_not_indexed(any_index):
    assert any_index.dictionary.lookup("the") is None


def test_stemming_conflates(any_index):
    # "records" and "record" appear in different documents but share a record.
    entry = any_index.term_entry("records")
    assert entry is not None
    assert entry is any_index.term_entry("record")
    assert entry.df >= 3


def test_doctable_lengths(any_index):
    assert len(any_index.doctable) == len(DOCS)
    # d1 has 8 tokens, one of which may be stopped.
    assert any_index.doctable.length_of(1) >= 6


def test_positions_preserved(any_index):
    entry = any_index.term_entry("information")
    postings = decode_record(any_index.store.fetch(entry.storage_key))
    by_doc = dict(postings)
    assert 1 in by_doc and 9 in by_doc
    assert by_doc[1] == (0,)  # first token of d1


def test_stats(any_index):
    stats = any_index.stats
    assert stats.documents == len(DOCS)
    assert stats.records == len(any_index.dictionary)
    assert stats.postings > 50
    assert len(stats.record_sizes) == stats.records
    assert 0.0 <= stats.compression_rate < 1.0


def test_spilling_multiple_runs_equivalent():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=128)
    store = BTreeInvertedFile(fs)
    builder = IndexBuilder(fs, store, run_limit=10)  # force many runs
    builder.add_documents(DOCS)
    spilled = builder.finalize()
    reference = build_index("btree", stopwords=())
    # Note: reference uses different stopwords; rebuild with none for both.
    fs2 = SimFileSystem(SimDisk(SimClock()), cache_blocks=128)
    store2 = BTreeInvertedFile(fs2)
    builder2 = IndexBuilder(fs2, store2, run_limit=10)
    builder2.add_documents(DOCS)
    spilled2 = builder2.finalize()
    for entry in spilled.dictionary.entries():
        other = spilled2.dictionary.lookup(entry.term)
        assert other is not None
        assert decode_record(spilled.store.fetch(entry.storage_key)) == decode_record(
            spilled2.store.fetch(other.storage_key)
        )


def test_duplicate_doc_id_rejected():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=128)
    builder = IndexBuilder(fs, BTreeInvertedFile(fs))
    builder.add_document(Document(1, text="one"))
    with pytest.raises(IndexError_):
        builder.add_document(Document(1, text="again"))


def test_finalize_twice_rejected():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=128)
    builder = IndexBuilder(fs, BTreeInvertedFile(fs))
    builder.add_document(Document(1, text="one"))
    builder.finalize()
    with pytest.raises(IndexError_):
        builder.finalize()
    with pytest.raises(IndexError_):
        builder.add_document(Document(2, text="two"))


def test_pretokenized_documents():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=128)
    builder = IndexBuilder(fs, BTreeInvertedFile(fs), stem_fn=str)
    builder.add_document(Document(1, tokens=["tok1", "tok2", "tok1"]))
    index = builder.finalize()
    entry = index.dictionary.lookup("tok1")
    assert entry.ctf == 2
    assert entry.df == 1


def test_mneme_pool_partitioning(mneme_index):
    counts = mneme_index.store.pool_object_counts()
    # The tiny test collection has mostly tiny records.
    assert counts["small"] > 0
    assert counts["small"] + counts["medium"] + counts["large"] == len(
        mneme_index.dictionary
    )


def test_table1_sizes_reported(any_index):
    assert any_index.store.file_size > 0
