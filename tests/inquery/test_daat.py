"""Tests for the linked inverted file and document-at-a-time engine."""

import pytest

from repro.errors import QueryError
from repro.inquery import (
    DocumentAtATimeEngine,
    Document,
    IndexBuilder,
    LinkedMnemeInvertedFile,
    RetrievalEngine,
    decode_record,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


def make_index(linked=True, docs=120, chunk_bytes=128):
    """A collection with one very frequent term so a chain forms."""
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=256)
    store = (
        LinkedMnemeInvertedFile(fs, chunk_bytes=chunk_bytes)
        if linked
        else __import__("repro.inquery", fromlist=["MnemeInvertedFile"]).MnemeInvertedFile(fs)
    )
    builder = IndexBuilder(fs, store, stem_fn=str)
    for doc_id in range(1, docs + 1):
        tokens = ["common"] * (doc_id % 4 + 1) + [f"term{doc_id % 7}", f"rare{doc_id}"]
        builder.add_document(Document(doc_id, tokens=tokens))
    return builder.finalize()


@pytest.fixture(scope="module")
def linked_index():
    return make_index(linked=True)


@pytest.fixture(scope="module")
def plain_index():
    return make_index(linked=False)


class TestLinkedInvertedFile:
    def test_large_records_chained(self, linked_index):
        store = linked_index.store
        entry = linked_index.term_entry("common")
        # "common" has ~120 postings; with a 128-byte chunk target it
        # spans multiple chunks even though it's under the 4 KB pool
        # threshold?  No: chains form only above the threshold, so this
        # record is medium.  Check routing is unchanged for it.
        record = store.fetch(entry.storage_key)
        assert len(decode_record(record)) == entry.df

    def test_fetch_reassembles_chains(self):
        # Force chaining by dropping the medium threshold.
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=256)
        store = LinkedMnemeInvertedFile(fs, medium_max_bytes=64, chunk_bytes=96)
        builder = IndexBuilder(fs, store, stem_fn=str)
        for doc_id in range(1, 80):
            builder.add_document(Document(doc_id, tokens=["hot", f"cold{doc_id}"]))
        index = builder.finalize()
        entry = index.term_entry("hot")
        record = store.fetch(entry.storage_key)
        postings = decode_record(record)
        assert [d for d, _p in postings] == list(range(1, 80))
        # The chain spans several chunks.
        from repro.mneme import chunk_ids, split_global

        _fn, oid = split_global(entry.storage_key)
        assert len(chunk_ids(store.large, oid)) >= 3

    def test_stream_resident_smaller_than_record(self):
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=256)
        store = LinkedMnemeInvertedFile(fs, medium_max_bytes=64, chunk_bytes=96)
        builder = IndexBuilder(fs, store, stem_fn=str)
        for doc_id in range(1, 120):
            builder.add_document(Document(doc_id, tokens=["hot", f"x{doc_id}"]))
        index = builder.finalize()
        entry = index.term_entry("hot")
        full = len(store.fetch(entry.storage_key))
        stream = store.stream_postings(entry.storage_key)
        postings = list(stream)
        assert len(postings) == entry.df
        # One chunk resident at a time, far below the whole record.
        assert 0 < max(96, 1) < full


class TestDAATEngine:
    QUERIES = [
        "common",
        "#sum( common term1 )",
        "#sum( common term1 term2 rare5 )",
        "#wsum( 3 common 1 term3 )",
        "#sum( nothere common )",
    ]

    def test_matches_taat_rankings(self, linked_index):
        taat = RetrievalEngine(linked_index, top_k=20)
        daat = DocumentAtATimeEngine(linked_index, top_k=20)
        for query in self.QUERIES:
            expected = taat.run_query(query).ranking
            got = daat.run_query(query).ranking
            assert got == expected, query

    def test_matches_taat_on_plain_backend(self, plain_index):
        taat = RetrievalEngine(plain_index, top_k=15)
        daat = DocumentAtATimeEngine(plain_index, top_k=15)
        for query in self.QUERIES:
            assert daat.run_query(query).ranking == taat.run_query(query).ranking

    def test_rejects_structured_operators(self, linked_index):
        daat = DocumentAtATimeEngine(linked_index)
        for bad in ("#and( a b )", "#sum( a #and( b c ) )", "#phrase( a b )"):
            with pytest.raises(QueryError):
                daat.run_query(bad)

    def test_unknown_terms_only(self, linked_index):
        daat = DocumentAtATimeEngine(linked_index)
        result = daat.run_query("#sum( zzz qqq )")
        assert result.ranking == []
        assert result.documents_scored == 0

    def test_documents_scored_counts_union(self, linked_index):
        daat = DocumentAtATimeEngine(linked_index, top_k=5)
        result = daat.run_query("common")
        assert result.documents_scored == linked_index.term_entry("common").df
        assert len(result.ranking) == 5

    def test_peak_resident_reported(self, linked_index):
        daat = DocumentAtATimeEngine(linked_index)
        result = daat.run_query("#sum( common term1 )")
        assert result.peak_resident_bytes > 0

    def test_daat_peak_memory_beats_taat_records(self):
        """The paper's motivation: chains bound resident record bytes."""
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=512)
        store = LinkedMnemeInvertedFile(fs, medium_max_bytes=64, chunk_bytes=128)
        builder = IndexBuilder(fs, store, stem_fn=str)
        for doc_id in range(1, 400):
            builder.add_document(
                Document(doc_id, tokens=["alpha", "beta", f"z{doc_id}"])
            )
        index = builder.finalize()
        total_record_bytes = sum(
            len(store.fetch(index.term_entry(t).storage_key))
            for t in ("alpha", "beta")
        )
        daat = DocumentAtATimeEngine(index)
        result = daat.run_query("#sum( alpha beta )")
        assert result.peak_resident_bytes < total_record_bytes / 3

    def test_batch(self, linked_index):
        daat = DocumentAtATimeEngine(linked_index)
        results = daat.run_batch(["common", "term1"])
        assert len(results) == 2


class TestLinkedUpdates:
    def test_update_record_rechains(self):
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=256)
        store = LinkedMnemeInvertedFile(fs, medium_max_bytes=64, chunk_bytes=96)
        builder = IndexBuilder(fs, store, stem_fn=str)
        for doc_id in range(1, 60):
            builder.add_document(Document(doc_id, tokens=["hot", f"y{doc_id}"]))
        index = builder.finalize()
        from repro.inquery import encode_record

        entry = index.term_entry("hot")
        new_postings = [(d, (0,)) for d in range(1, 100)]
        new_key = store.update_record(entry.storage_key, encode_record(new_postings))
        assert decode_record(store.fetch(new_key)) == new_postings

    def test_append_postings_extends_chain(self):
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=256)
        store = LinkedMnemeInvertedFile(fs, medium_max_bytes=64, chunk_bytes=96)
        builder = IndexBuilder(fs, store, stem_fn=str)
        for doc_id in range(1, 60):
            builder.add_document(Document(doc_id, tokens=["hot", f"w{doc_id}"]))
        index = builder.finalize()
        entry = index.term_entry("hot")
        before = decode_record(store.fetch(entry.storage_key))
        extra = [(200, (0, 3)), (201, (5,))]
        key = store.append_postings(entry.storage_key, extra)
        assert key == entry.storage_key  # grown in place
        after = decode_record(store.fetch(key))
        assert after == before + extra

    def test_incremental_document_add_on_linked_backend(self):
        from repro.inquery import add_document_incremental

        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=256)
        store = LinkedMnemeInvertedFile(fs, medium_max_bytes=64, chunk_bytes=96)
        builder = IndexBuilder(fs, store, stem_fn=str)
        for doc_id in range(1, 50):
            builder.add_document(Document(doc_id, tokens=["hot", f"v{doc_id}"]))
        index = builder.finalize()
        add_document_incremental(index, Document(99, tokens=["hot", "fresh"]))
        entry = index.term_entry("hot")
        postings = decode_record(store.fetch(entry.storage_key))
        assert 99 in dict(postings)
        engine = RetrievalEngine(index)
        assert 99 in engine.run_query("fresh").doc_ids()
