"""Unit tests for posting streams and the document-at-a-time merge."""

import pytest

from repro.inquery import (
    ChunkedRecordStream,
    WholeRecordStream,
    encode_record,
    join_chunk_records,
    merge_streams,
    split_postings,
)
from repro.errors import IndexError_


POSTINGS = [(d, (0, d % 5 + 1)) for d in range(1, 101, 3)]


class TestSplitPostings:
    def test_slices_cover_everything_in_order(self):
        slices = split_postings(POSTINGS, target_bytes=64)
        assert len(slices) > 1
        flattened = [p for s in slices for p in s]
        assert flattened == POSTINGS

    def test_each_slice_is_a_valid_record(self):
        from repro.inquery import decode_record

        for postings in split_postings(POSTINGS, target_bytes=64):
            record = encode_record(postings)
            assert decode_record(record) == postings

    def test_join_chunks_equals_direct_encoding(self):
        chunks = [encode_record(s) for s in split_postings(POSTINGS, 64)]
        assert join_chunk_records(chunks) == encode_record(POSTINGS)

    def test_single_slice_for_small_input(self):
        slices = split_postings(POSTINGS[:2], target_bytes=4096)
        assert len(slices) == 1

    def test_empty_input(self):
        assert split_postings([], target_bytes=64) == [[]]

    def test_too_small_target_rejected(self):
        with pytest.raises(IndexError_):
            split_postings(POSTINGS, target_bytes=4)


class TestWholeRecordStream:
    def test_yields_all_postings(self):
        stream = WholeRecordStream(encode_record(POSTINGS))
        assert list(stream) == POSTINGS

    def test_resident_is_record_size(self):
        record = encode_record(POSTINGS)
        stream = WholeRecordStream(record)
        stream.peek()
        assert stream.resident_bytes == len(record)

    def test_resident_drops_at_end(self):
        stream = WholeRecordStream(encode_record(POSTINGS))
        list(stream)
        assert stream.peek() is None
        assert stream.resident_bytes == 0

    def test_peek_does_not_consume(self):
        stream = WholeRecordStream(encode_record(POSTINGS))
        assert stream.peek() == POSTINGS[0]
        assert stream.peek() == POSTINGS[0]
        assert stream.advance() == POSTINGS[0]
        assert stream.peek() == POSTINGS[1]


class TestChunkedRecordStream:
    def chunks(self):
        return [encode_record(s) for s in split_postings(POSTINGS, 64)]

    def test_yields_all_postings(self):
        stream = ChunkedRecordStream(iter(self.chunks()))
        assert list(stream) == POSTINGS

    def test_resident_is_one_chunk(self):
        chunks = self.chunks()
        stream = ChunkedRecordStream(iter(chunks))
        stream.peek()
        assert stream.resident_bytes <= max(len(c) for c in chunks)
        assert stream.resident_bytes < len(encode_record(POSTINGS))

    def test_empty(self):
        stream = ChunkedRecordStream(iter([]))
        assert stream.peek() is None
        assert list(stream) == []


class TestMergeStreams:
    def make(self, postings):
        return WholeRecordStream(encode_record(postings))

    def test_single_stream(self):
        merged = list(merge_streams([(0, self.make(POSTINGS[:5]))]))
        assert [doc for doc, _e in merged] == [d for d, _p in POSTINGS[:5]]

    def test_union_in_doc_order(self):
        a = [(1, (0,)), (5, (0,)), (9, (0,))]
        b = [(2, (0,)), (5, (1,)), (8, (0,))]
        merged = list(merge_streams([(0, self.make(a)), (1, self.make(b))]))
        assert [doc for doc, _e in merged] == [1, 2, 5, 8, 9]

    def test_evidence_gathered_per_document(self):
        a = [(5, (0,))]
        b = [(5, (1, 2))]
        merged = list(merge_streams([(0, self.make(a)), (1, self.make(b))]))
        doc, evidence = merged[0]
        assert doc == 5
        assert dict(evidence) == {0: (5, (0,)), 1: (5, (1, 2))}

    def test_no_streams(self):
        assert list(merge_streams([])) == []

    def test_empty_streams(self):
        merged = list(merge_streams([(0, ChunkedRecordStream(iter([])))]))
        assert merged == []
