"""Unit tests for recall/precision evaluation."""

import pytest

from repro.errors import ConfigError
from repro.inquery import RECALL_POINTS, evaluate_ranking, evaluate_run


def test_perfect_ranking():
    result = evaluate_ranking([1, 2, 3], {1, 2, 3})
    assert result.recall == 1.0
    assert result.precision == 1.0
    assert result.average_precision == 1.0
    assert result.r_precision == 1.0
    assert result.interpolated == (1.0,) * 11


def test_nothing_relevant_retrieved():
    result = evaluate_ranking([4, 5], {1, 2})
    assert result.recall == 0.0
    assert result.average_precision == 0.0


def test_half_right():
    result = evaluate_ranking([1, 9, 2, 8], {1, 2})
    assert result.recall == 1.0
    assert result.precision == 0.5
    # AP = (1/1 + 2/3) / 2
    assert result.average_precision == pytest.approx((1 + 2 / 3) / 2)
    assert result.r_precision == pytest.approx(0.5)


def test_interpolated_monotone_nonincreasing():
    result = evaluate_ranking([1, 9, 8, 2, 7, 3], {1, 2, 3})
    interp = result.interpolated
    assert all(interp[i] >= interp[i + 1] for i in range(len(interp) - 1))
    assert len(interp) == len(RECALL_POINTS)


def test_short_ranking_r_precision():
    result = evaluate_ranking([1], {1, 2, 3})
    assert result.r_precision == pytest.approx(1 / 3)


def test_empty_relevance_rejected():
    with pytest.raises(ConfigError):
        evaluate_ranking([1], set())


def test_evaluate_run_macro_average():
    rankings = [[1, 2], [9, 8]]
    relevance = {0: {1, 2}, 1: {7}}
    result = evaluate_run(rankings, relevance)
    assert result.queries == 2
    assert result.mean_average_precision == pytest.approx((1.0 + 0.0) / 2)


def test_evaluate_run_skips_unjudged():
    rankings = [[1], [2]]
    relevance = {0: {1}}
    result = evaluate_run(rankings, relevance)
    assert result.queries == 1
    assert result.mean_average_precision == 1.0


def test_evaluate_run_no_judgments_rejected():
    with pytest.raises(ConfigError):
        evaluate_run([[1]], {})
