"""Edge cases for the engines: empty indexes, degenerate queries."""

import pytest

from repro.errors import QueryError
from repro.inquery import (
    BTreeInvertedFile,
    DocumentAtATimeEngine,
    Document,
    IndexBuilder,
    MnemeInvertedFile,
    RetrievalEngine,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


def empty_index(backend="mneme"):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=16)
    store = BTreeInvertedFile(fs) if backend == "btree" else MnemeInvertedFile(fs)
    builder = IndexBuilder(fs, store)
    return builder.finalize()


@pytest.mark.parametrize("backend", ["btree", "mneme"])
def test_empty_index_returns_nothing(backend):
    index = empty_index(backend)
    engine = RetrievalEngine(index)
    assert engine.run_query("anything at all").ranking == []


def test_empty_index_daat():
    index = empty_index()
    engine = DocumentAtATimeEngine(index)
    result = engine.run_query("#sum( anything here )")
    assert result.ranking == []
    assert result.peak_resident_bytes == 0


def test_stopword_only_query():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=16)
    builder = IndexBuilder(fs, MnemeInvertedFile(fs), stopwords=("the", "a"))
    builder.add_document(Document(1, text="the cat sat on a mat"))
    index = builder.finalize()
    engine = RetrievalEngine(index)
    assert engine.run_query("the a").ranking == []


def test_single_document_collection():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=16)
    builder = IndexBuilder(fs, MnemeInvertedFile(fs), stem_fn=str)
    builder.add_document(Document(1, tokens=["solo", "doc"]))
    index = builder.finalize()
    engine = RetrievalEngine(index)
    result = engine.run_query("solo")
    assert result.doc_ids() == [1]
    # idf of a universal term in a 1-doc collection is ~0; belief stays
    # at (or barely above) the default, but never below.
    from repro.inquery import DEFAULT_BELIEF

    assert result.ranking[0][1] >= DEFAULT_BELIEF


def test_whitespace_query_rejected():
    index = empty_index()
    engine = RetrievalEngine(index)
    with pytest.raises(QueryError):
        engine.run_query("    ")


def test_huge_top_k():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=16)
    builder = IndexBuilder(fs, MnemeInvertedFile(fs), stem_fn=str)
    for doc_id in range(1, 6):
        builder.add_document(Document(doc_id, tokens=["shared"]))
    index = builder.finalize()
    engine = RetrievalEngine(index, top_k=10_000)
    assert len(engine.run_query("shared").ranking) == 5


def test_query_of_only_repeated_term():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=16)
    builder = IndexBuilder(fs, MnemeInvertedFile(fs), stem_fn=str)
    builder.add_document(Document(1, tokens=["echo", "echo", "other"]))
    builder.add_document(Document(2, tokens=["other"]))
    index = builder.finalize()
    taat = RetrievalEngine(index).run_query("#sum( echo echo echo )")
    daat = DocumentAtATimeEngine(index).run_query("#sum( echo echo echo )")
    assert taat.ranking == daat.ranking
    assert taat.doc_ids() == [1]


def test_document_with_one_token():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=16)
    builder = IndexBuilder(fs, MnemeInvertedFile(fs), stem_fn=str)
    builder.add_document(Document(1, tokens=["lone"]))
    index = builder.finalize()
    assert index.doctable.length_of(1) == 1
    assert RetrievalEngine(index).run_query("lone").doc_ids() == [1]
