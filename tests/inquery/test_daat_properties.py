"""Property tests: TAAT/DAAT equivalence over random corpora."""

from hypothesis import given, settings, strategies as st

from repro.inquery import (
    DocumentAtATimeEngine,
    Document,
    IndexBuilder,
    LinkedMnemeInvertedFile,
    MnemeInvertedFile,
    RetrievalEngine,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem

VOCAB = [f"t{i}" for i in range(12)]

corpus_st = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=20),
    min_size=1,
    max_size=25,
)

query_terms_st = st.lists(st.sampled_from(VOCAB + ["zzz"]), min_size=1, max_size=5)


def build(corpus, linked):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    if linked:
        store = LinkedMnemeInvertedFile(fs, medium_max_bytes=24, chunk_bytes=64)
    else:
        store = MnemeInvertedFile(fs)
    builder = IndexBuilder(fs, store, stem_fn=str)
    for doc_id, tokens in enumerate(corpus, start=1):
        builder.add_document(Document(doc_id, tokens=tokens))
    return builder.finalize()


@given(corpus=corpus_st, terms=query_terms_st, linked=st.booleans())
@settings(max_examples=40, deadline=None)
def test_daat_equals_taat_sum(corpus, terms, linked):
    index = build(corpus, linked)
    query = "#sum( " + " ".join(terms) + " )"
    taat = RetrievalEngine(index, top_k=30).run_query(query)
    daat = DocumentAtATimeEngine(index, top_k=30).run_query(query)
    assert daat.ranking == taat.ranking


@given(
    corpus=corpus_st,
    terms=query_terms_st,
    weights=st.lists(st.integers(min_value=1, max_value=5), min_size=5, max_size=5),
)
@settings(max_examples=30, deadline=None)
def test_daat_equals_taat_wsum(corpus, terms, weights):
    index = build(corpus, linked=True)
    inner = " ".join(f"{w} {t}" for w, t in zip(weights, terms))
    query = f"#wsum( {inner} )"
    taat = RetrievalEngine(index, top_k=30).run_query(query)
    daat = DocumentAtATimeEngine(index, top_k=30).run_query(query)
    assert daat.ranking == taat.ranking


@given(corpus=corpus_st)
@settings(max_examples=25, deadline=None)
def test_linked_backend_fetch_equals_plain(corpus):
    plain = build(corpus, linked=False)
    linked = build(corpus, linked=True)
    from repro.inquery import decode_record

    for entry in plain.dictionary.entries():
        other = linked.dictionary.lookup(entry.term)
        assert other is not None
        assert decode_record(plain.store.fetch(entry.storage_key)) == decode_record(
            linked.store.fetch(other.storage_key)
        )
