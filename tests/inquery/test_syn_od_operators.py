"""Tests for the #syn and #odN operators."""

import pytest

from repro.errors import QueryError
from repro.inquery import DEFAULT_BELIEF, InferenceNetwork, parse_query

from .test_network import FixtureProvider


@pytest.fixture()
def provider():
    return FixtureProvider(
        postings={
            "car": {1: [0], 2: [1]},
            "automobile": {3: [2], 2: [4]},
            "fast": {1: [1], 4: [0]},
            "red": {1: [3], 5: [0]},
            "stop": {1: [5]},
            "sign": {1: [7]},   # gap of 2 after "stop"
        },
        doc_lengths={1: 8, 2: 5, 3: 4, 4: 2, 5: 3},
    )


def evaluate(provider, text):
    return InferenceNetwork(provider).evaluate(parse_query(text))


class TestSyn:
    def test_parses(self):
        tree = parse_query("#syn( car automobile )")
        assert tree.op == "syn"
        assert [c.term for c in tree.children] == ["car", "automobile"]

    def test_unions_postings(self, provider):
        scores, _ = evaluate(provider, "#syn( car automobile )")
        assert set(scores) == {1, 2, 3}

    def test_df_is_union_size(self, provider):
        # doc 2 contains both members: as one synonym "term" its tf is 2,
        # and the union df (3) drives a lower idf than either member's.
        syn, _ = evaluate(provider, "#syn( car automobile )")
        car, _ = evaluate(provider, "car")
        assert syn[2] > syn[1]  # tf 2 beats tf 1 at similar doc length
        assert syn[1] < car[1]  # union df lowers idf vs 'car' alone

    def test_missing_members_ignored(self, provider):
        scores, _ = evaluate(provider, "#syn( car ghostword )")
        assert set(scores) == {1, 2}

    def test_all_missing(self, provider):
        scores, default = evaluate(provider, "#syn( ghost words )")
        assert scores == {}
        assert default == DEFAULT_BELIEF

    def test_rejects_nested(self):
        with pytest.raises(QueryError):
            parse_query("#syn( car #and( a b ) )")


class TestOd:
    def test_parses_window(self):
        tree = parse_query("#od3( stop sign )")
        assert tree.op == "od"
        assert tree.window == 3

    def test_requires_window(self):
        with pytest.raises(QueryError):
            parse_query("#od( stop sign )")

    def test_matches_within_window(self, provider):
        scores, _ = evaluate(provider, "#od2( stop sign )")
        assert set(scores) == {1}  # positions 5 and 7: gap 2

    def test_window_too_small(self, provider):
        scores, _ = evaluate(provider, "#od1( stop sign )")
        assert scores == {}

    def test_order_matters(self, provider):
        scores, _ = evaluate(provider, "#od5( sign stop )")
        assert scores == {}

    def test_od1_equals_phrase(self, provider):
        od, _ = evaluate(provider, "#od1( fast red )")     # positions 1, 3: gap 2
        phrase, _ = evaluate(provider, "#phrase( fast red )")
        assert od == phrase == {}

    def test_three_terms_chained(self, provider):
        scores, _ = evaluate(provider, "#od2( fast red stop )")
        # fast@1 -> red@3 (gap 2) -> stop@5 (gap 2): matches doc 1.
        assert set(scores) == {1}

    def test_format_roundtrip(self):
        for text in ("#od3( a b )", "#syn( a b c )"):
            tree = parse_query(text)
            from repro.inquery import format_query

            assert parse_query(format_query(tree)) == tree
