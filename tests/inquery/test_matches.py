"""Tests for match-position and best-window helpers."""

import pytest

from repro.inquery import (
    Document,
    IndexBuilder,
    MnemeInvertedFile,
    best_window,
    term_match_positions,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture(scope="module")
def index():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    builder = IndexBuilder(fs, MnemeInvertedFile(fs), stem_fn=str)
    builder.add_document(Document(1, tokens=(
        ["noise"] * 10 + ["cache", "buffer"] + ["noise"] * 30 + ["cache"]
    )))
    builder.add_document(Document(2, tokens=["cache"] * 3 + ["filler"] * 5))
    return builder.finalize()


def test_positions_for_present_terms(index):
    positions = term_match_positions(index, "cache buffer", 1)
    assert positions["cache"] == (10, 42)
    assert positions["buffer"] == (11,)


def test_absent_terms_omitted(index):
    positions = term_match_positions(index, "cache ghostword", 2)
    assert set(positions) == {"cache"}


def test_doc_without_matches(index):
    assert term_match_positions(index, "buffer", 2) == {}


def test_repeated_terms_looked_up_once(index):
    store = index.store
    before = store.record_lookups
    term_match_positions(index, "#sum( cache cache cache )", 1)
    assert store.record_lookups - before == 1


def test_best_window_covers_cooccurrence(index):
    start, end, distinct = best_window(index, "cache buffer", 1, window=5)
    assert distinct == 2
    assert start <= 10 and end > 11  # spans positions 10 and 11


def test_best_window_no_matches(index):
    assert best_window(index, "ghost", 2, window=7) == (0, 7, 0)


def test_best_window_single_term(index):
    start, _end, distinct = best_window(index, "cache", 2, window=4)
    assert distinct == 1
    assert start == 0
