"""Property tests: inference network operators respect probability laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.inquery import DEFAULT_BELIEF, InferenceNetwork, parse_query

from .test_network import FixtureProvider


def make_provider(data):
    """Random small corpus: {term: {doc: [positions]}}."""
    postings = {}
    lengths = {}
    for term, docs in data.items():
        postings[term] = {}
        for doc, tf in docs.items():
            postings[term][doc] = list(range(tf))
            lengths[doc] = max(lengths.get(doc, 0), tf + 2)
    if not lengths:
        lengths[1] = 5
    return FixtureProvider(postings=postings, doc_lengths=lengths)


corpus_st = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.dictionaries(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=6),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=4,
)


def evaluate(provider, text):
    return InferenceNetwork(provider).evaluate(parse_query(text))


@given(data=corpus_st)
@settings(max_examples=60, deadline=None)
def test_all_operators_stay_in_unit_interval(data):
    provider = make_provider(data)
    for text in (
        "#sum( a b c )",
        "#wsum( 3 a 1 b )",
        "#and( a b )",
        "#or( a b c )",
        "#not( a )",
        "#max( a b )",
        "#syn( a b )",
    ):
        scores, default = evaluate(provider, text)
        for belief in list(scores.values()) + [default]:
            assert 0.0 <= belief <= 1.0, text


@given(data=corpus_st)
@settings(max_examples=40, deadline=None)
def test_or_dominates_and(data):
    provider = make_provider(data)
    or_scores, or_default = evaluate(provider, "#or( a b )")
    and_scores, and_default = evaluate(provider, "#and( a b )")
    for doc in set(or_scores) | set(and_scores):
        assert or_scores.get(doc, or_default) >= and_scores.get(doc, and_default) - 1e-12
    assert or_default >= and_default - 1e-12


@given(data=corpus_st)
@settings(max_examples=40, deadline=None)
def test_max_bounded_by_or(data):
    provider = make_provider(data)
    or_scores, or_default = evaluate(provider, "#or( a b )")
    max_scores, max_default = evaluate(provider, "#max( a b )")
    for doc in set(or_scores) | set(max_scores):
        assert max_scores.get(doc, max_default) <= or_scores.get(doc, or_default) + 1e-12


@given(data=corpus_st)
@settings(max_examples=40, deadline=None)
def test_sum_between_min_and_max_child(data):
    provider = make_provider(data)
    a_scores, a_default = evaluate(provider, "a")
    b_scores, b_default = evaluate(provider, "b")
    sum_scores, _ = evaluate(provider, "#sum( a b )")
    for doc, belief in sum_scores.items():
        lo = min(a_scores.get(doc, a_default), b_scores.get(doc, b_default))
        hi = max(a_scores.get(doc, a_default), b_scores.get(doc, b_default))
        assert lo - 1e-12 <= belief <= hi + 1e-12


@given(data=corpus_st)
@settings(max_examples=40, deadline=None)
def test_not_is_involution_on_beliefs(data):
    provider = make_provider(data)
    a_scores, a_default = evaluate(provider, "a")
    nn_scores, nn_default = evaluate(provider, "#not( #not( a ) )")
    for doc in a_scores:
        assert nn_scores[doc] == pytest.approx(a_scores[doc], abs=1e-12)
    assert nn_default == pytest.approx(a_default, abs=1e-12)


@given(data=corpus_st)
@settings(max_examples=40, deadline=None)
def test_term_beliefs_never_below_default(data):
    provider = make_provider(data)
    for term in ("a", "b", "c", "d"):
        scores, default = evaluate(provider, term)
        assert default == DEFAULT_BELIEF
        for belief in scores.values():
            assert belief >= DEFAULT_BELIEF - 1e-12
