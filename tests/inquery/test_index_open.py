"""Tests for the fresh-process index open path."""

import pytest

from repro.inquery import (
    BTreeInvertedFile,
    CollectionIndex,
    DEFAULT_STOPWORDS,
    Document,
    IndexBuilder,
    MnemeInvertedFile,
    RetrievalEngine,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem

DOCS = [
    Document(1, "a", "objects live in pools inside segments"),
    Document(2, "b", "segments transfer between disk and memory"),
    Document(3, "c", "pools define policies for object management"),
]


def build(backend):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    store = BTreeInvertedFile(fs) if backend == "btree" else MnemeInvertedFile(fs)
    builder = IndexBuilder(fs, store, stopwords=DEFAULT_STOPWORDS)
    builder.add_documents(DOCS)
    index = builder.finalize()
    index.save()
    return index


@pytest.mark.parametrize("backend", ["btree", "mneme"])
def test_open_restores_queryable_index(backend):
    original = build(backend)
    fs = original.fs
    store = BTreeInvertedFile(fs) if backend == "btree" else MnemeInvertedFile(fs)
    reopened = CollectionIndex.open(fs, store, stopwords=DEFAULT_STOPWORDS)
    assert len(reopened.dictionary) == len(original.dictionary)
    assert len(reopened.doctable) == len(original.doctable)
    original_ranking = RetrievalEngine(original).run_query("pools segments").ranking
    reopened_ranking = RetrievalEngine(reopened).run_query("pools segments").ranking
    assert reopened_ranking == original_ranking


def test_open_restores_scalar_stats():
    original = build("mneme")
    reopened = CollectionIndex.open(original.fs, MnemeInvertedFile(original.fs))
    assert reopened.stats.documents == original.stats.documents
    assert reopened.stats.postings == original.stats.postings
    assert reopened.stats.records == original.stats.records
    assert reopened.stats.compressed_bytes == original.stats.compressed_bytes
    # Per-record sizes are not persisted.
    assert reopened.stats.record_sizes == []


def test_open_then_update_then_reopen():
    from repro.inquery import add_document_incremental

    original = build("mneme")
    fs = original.fs
    first = CollectionIndex.open(fs, MnemeInvertedFile(fs), stopwords=DEFAULT_STOPWORDS)
    add_document_incremental(first, Document(9, "d", "buffers hold segments"))
    first.save()
    second = CollectionIndex.open(fs, MnemeInvertedFile(fs), stopwords=DEFAULT_STOPWORDS)
    assert 9 in second.doctable
    assert 9 in RetrievalEngine(second).run_query("buffers").doc_ids()
