"""Shared fixtures: a small hand-written collection on each backend."""

import pytest

from repro.inquery import (
    BTreeInvertedFile,
    BufferSizes,
    Document,
    IndexBuilder,
    MnemeInvertedFile,
    RetrievalEngine,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem

DOCS = [
    Document(1, "d1", "information retrieval systems index large document collections"),
    Document(2, "d2", "the persistent object store manages objects in segments"),
    Document(3, "d3", "inverted file index records are compressed integer vectors"),
    Document(4, "d4", "buffer management policies cache segments in memory buffers"),
    Document(5, "d5", "the b-tree package stores inverted file records on disk"),
    Document(6, "d6", "query processing reads one inverted list record per term"),
    Document(7, "d7", "document ranking sorts documents by combined belief values"),
    Document(8, "d8", "legal case descriptions form a private document collection"),
    Document(9, "d9", "information retrieval and database management systems differ"),
    Document(10, "d10", "object store buffers cache inverted file records in memory"),
]


def build_index(backend: str, stopwords=("the", "a", "in", "are", "and", "by", "on", "per")):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=128)
    if backend == "btree":
        store = BTreeInvertedFile(fs)
    elif backend == "mneme":
        store = MnemeInvertedFile(fs)
    elif backend == "mneme-cache":
        store = MnemeInvertedFile(
            fs, buffer_sizes=BufferSizes(small=12288, medium=32768, large=65536)
        )
    else:
        raise ValueError(backend)
    builder = IndexBuilder(fs, store, stopwords=stopwords)
    builder.add_documents(DOCS)
    return builder.finalize()


@pytest.fixture(params=["btree", "mneme", "mneme-cache"])
def any_index(request):
    return build_index(request.param)


@pytest.fixture()
def mneme_index():
    return build_index("mneme")


@pytest.fixture()
def btree_index():
    return build_index("btree")


@pytest.fixture()
def engine(any_index):
    return RetrievalEngine(any_index, top_k=10)
