"""Tests for incremental document addition and deletion.

The paper's classic INQUERY requires re-indexing the whole collection
for a single-document change; the object store makes per-record update
feasible.  These tests check the incremental path gives the same index
state as rebuilding from scratch.
"""

import pytest

from repro.errors import IndexError_
from repro.inquery import (
    Document,
    RetrievalEngine,
    add_document_incremental,
    decode_record,
    remove_document_incremental,
)

from .conftest import DOCS, build_index


NEW_DOC = Document(11, "d11", "buffer caching improves inverted file record retrieval")


def test_incremental_add_updates_records(any_index):
    add_document_incremental(any_index, NEW_DOC)
    entry = any_index.term_entry("buffer")
    postings = decode_record(any_index.store.fetch(entry.storage_key))
    assert 11 in dict(postings)


def test_incremental_add_searchable(any_index):
    add_document_incremental(any_index, NEW_DOC)
    engine = RetrievalEngine(any_index)
    result = engine.run_query("#and( buffer caching )")
    assert 11 in result.doc_ids()[:3]


def test_incremental_add_new_terms(any_index):
    doc = Document(12, text="zyzzyva zyzzyva appears nowhere else")
    add_document_incremental(any_index, doc)
    entry = any_index.term_entry("zyzzyva")
    assert entry is not None
    assert entry.df == 1
    assert entry.ctf == 2


def test_incremental_add_duplicate_id_rejected(any_index):
    with pytest.raises(IndexError_):
        add_document_incremental(any_index, Document(1, text="dup"))


def test_incremental_matches_full_rebuild():
    incremental = build_index("mneme")
    add_document_incremental(incremental, NEW_DOC)

    from repro.inquery import IndexBuilder, MnemeInvertedFile
    from repro.simdisk import SimClock, SimDisk, SimFileSystem

    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=128)
    builder = IndexBuilder(
        fs,
        MnemeInvertedFile(fs),
        stopwords=("the", "a", "in", "are", "and", "by", "on", "per"),
    )
    builder.add_documents(list(DOCS) + [NEW_DOC])
    rebuilt = builder.finalize()

    for entry in rebuilt.dictionary.entries():
        other = incremental.dictionary.lookup(entry.term)
        assert other is not None, entry.term
        assert (entry.df, entry.ctf) == (other.df, other.ctf)
        assert decode_record(rebuilt.store.fetch(entry.storage_key)) == decode_record(
            incremental.store.fetch(other.storage_key)
        )


def test_remove_document(any_index):
    rewritten = remove_document_incremental(any_index, 5)
    assert rewritten > 0
    assert 5 not in any_index.doctable
    entry = any_index.term_entry("disk")  # only d5 mentions disk
    postings = decode_record(any_index.store.fetch(entry.storage_key))
    assert 5 not in dict(postings)
    engine = RetrievalEngine(any_index)
    assert 5 not in engine.run_query("disk package").doc_ids()


def test_remove_unknown_rejected(any_index):
    with pytest.raises(IndexError_):
        remove_document_incremental(any_index, 999)


def test_add_then_remove_restores_state(any_index):
    import copy

    df_before = {e.term: (e.df, e.ctf) for e in any_index.dictionary.entries()}
    add_document_incremental(any_index, NEW_DOC)
    remove_document_incremental(any_index, NEW_DOC.doc_id)
    for entry in any_index.dictionary.entries():
        if entry.term in df_before:
            assert (entry.df, entry.ctf) == df_before[entry.term]
