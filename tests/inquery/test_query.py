"""Unit tests for the structured query language parser."""

import pytest

from repro.errors import QueryError
from repro.inquery import (
    OpNode,
    TermNode,
    count_nodes,
    format_query,
    parse_query,
    query_terms,
)


def test_single_term():
    assert parse_query("database") == TermNode("database")


def test_bare_terms_become_sum():
    tree = parse_query("information retrieval system")
    assert isinstance(tree, OpNode)
    assert tree.op == "sum"
    assert [c.term for c in tree.children] == ["information", "retrieval", "system"]


def test_case_folded():
    assert parse_query("DataBase") == TermNode("database")


def test_nested_operators():
    tree = parse_query("#and( persistent #or( object store ) )")
    assert tree.op == "and"
    assert tree.children[0] == TermNode("persistent")
    inner = tree.children[1]
    assert inner.op == "or"
    assert [c.term for c in inner.children] == ["object", "store"]


def test_wsum_weights():
    tree = parse_query("#wsum( 2.0 legal 1.0 court )")
    assert tree.op == "wsum"
    assert tree.weights == (2.0, 1.0)
    assert [c.term for c in tree.children] == ["legal", "court"]


def test_wsum_with_nested_node():
    tree = parse_query("#wsum( 3 #phrase( supreme court ) 1 case )")
    assert tree.weights == (3.0, 1.0)
    assert tree.children[0].op == "phrase"


def test_uw_window():
    tree = parse_query("#uw5( inverted file )")
    assert tree.op == "uw"
    assert tree.window == 5


def test_phrase_requires_terms():
    with pytest.raises(QueryError):
        parse_query("#phrase( a #and( b c ) )")


def test_not_single_argument():
    tree = parse_query("#not( relational )")
    assert tree.op == "not"
    with pytest.raises(QueryError):
        parse_query("#not( a b )")


def test_errors():
    for bad in (
        "",
        "   ",
        "#bogus( a )",
        "#and( a",
        "#and a )",
        "#and()",
        "#wsum( a )",
        "#wsum( 1.0 )",
        ")",
    ):
        with pytest.raises(QueryError):
            parse_query(bad)


def test_query_terms_in_order_with_repeats():
    tree = parse_query("#sum( cache #and( cache buffer ) )")
    assert list(query_terms(tree)) == ["cache", "cache", "buffer"]


def test_count_nodes():
    tree = parse_query("#sum( a #and( b c ) )")
    assert count_nodes(tree) == 5  # sum, a, and, b, c


def test_format_roundtrip():
    for text in (
        "#sum( information retrieval )",
        "#and( persistent #or( object store ) )",
        "#wsum( 2 legal 1 #phrase( supreme court ) )",
        "#uw4( inverted file )",
        "#not( relational )",
    ):
        tree = parse_query(text)
        assert parse_query(format_query(tree)) == tree
