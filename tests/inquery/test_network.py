"""Unit tests for inference network belief computation."""

import pytest

from repro.inquery import DEFAULT_BELIEF, InferenceNetwork, TermProvider, parse_query


class FixtureProvider(TermProvider):
    """An in-memory corpus: term -> {doc: positions}."""

    def __init__(self, postings, doc_lengths):
        self._postings = postings
        self._lengths = doc_lengths

    @property
    def doc_count(self):
        return len(self._lengths)

    @property
    def average_doc_length(self):
        return sum(self._lengths.values()) / len(self._lengths)

    def doc_length(self, doc_id):
        return self._lengths[doc_id]

    def postings(self, term):
        if term not in self._postings:
            return None
        return sorted((d, tuple(p)) for d, p in self._postings[term].items())


@pytest.fixture()
def provider():
    return FixtureProvider(
        postings={
            "cache": {1: [0, 4], 2: [1]},
            "buffer": {2: [0], 3: [2]},
            "disk": {3: [3], 4: [0]},
            "big": {1: [1], 2: [2], 3: [0], 4: [1]},  # common term, low idf
            "object": {1: [2], 2: [3]},
            "store": {1: [3], 2: [4]},
        },
        doc_lengths={1: 5, 2: 5, 3: 4, 4: 2},
    )


def evaluate(provider, text):
    return InferenceNetwork(provider).evaluate(parse_query(text))


def test_term_beliefs_above_default(provider):
    scores, default = evaluate(provider, "cache")
    assert default == DEFAULT_BELIEF
    assert set(scores) == {1, 2}
    assert all(b > DEFAULT_BELIEF for b in scores.values())


def test_higher_tf_higher_belief(provider):
    scores, _ = evaluate(provider, "cache")
    assert scores[1] > scores[2]  # two occurrences beat one (same doc length)


def test_rare_term_beats_common_term(provider):
    rare, _ = evaluate(provider, "cache")   # df 2 of 4
    common, _ = evaluate(provider, "big")   # df 4 of 4
    assert rare[1] > common[1]


def test_unknown_term_contributes_default(provider):
    scores, default = evaluate(provider, "unknown")
    assert scores == {}
    assert default == DEFAULT_BELIEF


def test_sum_averages(provider):
    scores, _ = evaluate(provider, "#sum( cache buffer )")
    single, _ = evaluate(provider, "cache")
    # Doc 2 matches both children; doc 1 only 'cache'.
    assert scores[2] > scores[1] or scores[2] > DEFAULT_BELIEF
    # A doc matching one child averages with the other child's default.
    expected = (single[1] + DEFAULT_BELIEF) / 2
    assert scores[1] == pytest.approx(expected)


def test_and_rewards_conjunction(provider):
    scores, _ = evaluate(provider, "#and( cache buffer )")
    assert scores[2] == max(scores.values())  # only doc with both terms


def test_or_favors_any_match(provider):
    scores, default = evaluate(provider, "#or( cache disk )")
    assert set(scores) == {1, 2, 3, 4}
    assert all(b > default for b in scores.values())


def test_not_inverts(provider):
    scores, default = evaluate(provider, "#not( cache )")
    assert default == pytest.approx(1 - DEFAULT_BELIEF)
    assert all(b < default for b in scores.values())


def test_max_takes_best_child(provider):
    combined, _ = evaluate(provider, "#max( cache buffer )")
    cache, _ = evaluate(provider, "cache")
    assert combined[1] == pytest.approx(max(cache[1], DEFAULT_BELIEF))


def test_wsum_weighting(provider):
    heavy, _ = evaluate(provider, "#wsum( 9 cache 1 buffer )")
    light, _ = evaluate(provider, "#wsum( 1 cache 9 buffer )")
    assert heavy[1] > light[1]  # doc 1 has only 'cache'


def test_phrase_matches_adjacent(provider):
    scores, _ = evaluate(provider, "#phrase( object store )")
    # 'object store' is adjacent in docs 1 (2,3) and 2 (3,4).
    assert set(scores) == {1, 2}


def test_phrase_requires_order(provider):
    scores, _ = evaluate(provider, "#phrase( store object )")
    assert scores == {}


def test_phrase_with_missing_word_is_empty(provider):
    scores, _ = evaluate(provider, "#phrase( object missing )")
    assert scores == {}


def test_uw_window_matches_unordered(provider):
    scores, _ = evaluate(provider, "#uw3( store object )")
    assert set(scores) == {1, 2}


def test_beliefs_are_probabilities(provider):
    for text in ("cache", "#and( cache buffer )", "#or( cache disk big )",
                 "#not( big )", "#sum( cache disk )"):
        scores, default = evaluate(provider, text)
        for belief in list(scores.values()) + [default]:
            assert 0.0 <= belief <= 1.0
