"""Property-based tests: the B-tree behaves like a dict keyed by term id."""

from hypothesis import given, settings, strategies as st

from repro.btree import BTreeKeyedFile
from repro.errors import KeyNotFoundError
from repro.simdisk import SimClock, SimDisk, SimFileSystem


def make_tree(order=8):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    return BTreeKeyedFile(fs.create("t"), page_size=512, interior_order=order)


keys_st = st.integers(min_value=0, max_value=100000)
records_st = st.binary(min_size=0, max_size=200)


@given(items=st.dictionaries(keys_st, records_st, max_size=120))
@settings(max_examples=50, deadline=None)
def test_insert_lookup_matches_dict(items):
    tree = make_tree()
    for key, record in items.items():
        tree.insert(key, record)
    assert len(tree) == len(items)
    for key, record in items.items():
        assert tree.lookup(key) == record
    assert [k for k, _ in tree.items()] == sorted(items)


@given(items=st.dictionaries(keys_st, records_st, min_size=1, max_size=100))
@settings(max_examples=40, deadline=None)
def test_bulk_load_matches_dict(items):
    tree = make_tree()
    ordered = sorted(items.items())
    tree.bulk_load(ordered)
    assert list(tree.items()) == ordered
    for key, record in items.items():
        assert tree.lookup(key) == record


@given(
    items=st.dictionaries(keys_st, records_st, min_size=1, max_size=80),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_mixed_operations_match_dict_model(items, data):
    tree = make_tree()
    model = {}
    for key, record in items.items():
        tree.insert(key, record)
        model[key] = record
    ops = data.draw(
        st.lists(
            st.tuples(st.sampled_from(["delete", "replace", "insert"]), keys_st, records_st),
            max_size=30,
        )
    )
    for op, key, record in ops:
        if op == "delete":
            if key in model:
                tree.delete(key)
                del model[key]
        elif op == "replace":
            if key in model:
                tree.replace(key, record)
                model[key] = record
        else:
            if key not in model:
                tree.insert(key, record)
                model[key] = record
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    for key in list(model)[:10]:
        assert tree.lookup(key) == model[key]


@given(items=st.dictionaries(keys_st, records_st, min_size=1, max_size=60))
@settings(max_examples=25, deadline=None)
def test_missing_keys_raise(items):
    tree = make_tree()
    for key, record in items.items():
        tree.insert(key, record)
    missing = next(k for k in range(200001, 200300) if k not in items)
    try:
        tree.lookup(missing)
        raised = False
    except KeyNotFoundError:
        raised = True
    assert raised
