"""Unit tests for B-tree node serialization and search helpers."""

import pytest

from repro.btree.node import (
    InteriorNode,
    LeafNode,
    find_key,
    insertion_point,
    leaf_entry_size,
    parse_node,
)
from repro.errors import BTreeError


def test_leaf_roundtrip_inline_and_locator():
    leaf = LeafNode(
        keys=[3, 7, 9],
        values=[b"tiny", (4096, 500), b""],
        next_leaf=12288,
    )
    back = parse_node(leaf.to_bytes())
    assert back.is_leaf
    assert back.keys == [3, 7, 9]
    assert back.values == [b"tiny", (4096, 500), b""]
    assert back.next_leaf == 12288


def test_empty_leaf_roundtrip():
    back = parse_node(LeafNode().to_bytes())
    assert back.keys == []
    assert back.values == []


def test_interior_roundtrip():
    node = InteriorNode(keys=[10, 20, 30], children=[0, 4096, 8192, 12288])
    back = parse_node(node.to_bytes())
    assert not back.is_leaf
    assert back.keys == [10, 20, 30]
    assert back.children == [0, 4096, 8192, 12288]


def test_parse_rejects_garbage():
    with pytest.raises(BTreeError):
        parse_node(b"")
    with pytest.raises(BTreeError):
        parse_node(b"Xjunk")


def test_child_for_routes_by_separator():
    node = InteriorNode(keys=[10, 20], children=[100, 200, 300])
    assert node.child_for(5) == 100
    assert node.child_for(10) == 200   # separator key goes right
    assert node.child_for(15) == 200
    assert node.child_for(20) == 300
    assert node.child_for(99) == 300


def test_used_bytes_matches_serialized_length():
    leaf = LeafNode(keys=[1, 2], values=[b"abcde", (0, 9)])
    assert leaf.used_bytes() == len(leaf.to_bytes())
    node = InteriorNode(keys=[1], children=[0, 4096])
    assert node.used_bytes() == len(node.to_bytes())


def test_leaf_entry_size_inline_vs_locator():
    assert leaf_entry_size(b"12345") == leaf_entry_size(b"") + 5
    assert leaf_entry_size((0, 10)) == leaf_entry_size((1 << 40, 1 << 20))


def test_find_key():
    keys = [2, 4, 6, 8]
    assert find_key(keys, 4) == 1
    assert find_key(keys, 8) == 3
    assert find_key(keys, 5) is None
    assert find_key([], 1) is None


def test_insertion_point():
    keys = [2, 4, 6]
    assert insertion_point(keys, 1) == 0
    assert insertion_point(keys, 3) == 1
    assert insertion_point(keys, 7) == 3
    assert insertion_point(keys, 4) == 1  # equal key inserts before
