"""Unit tests for the B-tree keyed file."""

import pytest

from repro.btree import BTreeKeyedFile
from repro.errors import BTreeError, DuplicateKeyError, KeyNotFoundError
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def fs():
    return SimFileSystem(SimDisk(SimClock()), cache_blocks=64)


@pytest.fixture()
def tree(fs):
    return BTreeKeyedFile(fs.create("btree"))


def test_empty_tree(tree):
    assert len(tree) == 0
    assert tree.height == 1
    with pytest.raises(KeyNotFoundError):
        tree.lookup(1)


def test_insert_and_lookup(tree):
    tree.insert(5, b"hello")
    assert tree.lookup(5) == b"hello"
    assert len(tree) == 1


def test_inline_and_heap_records(tree):
    tree.insert(1, b"tiny")            # inline
    tree.insert(2, b"x" * 5000)        # heap
    assert tree.lookup(1) == b"tiny"
    assert tree.lookup(2) == b"x" * 5000


def test_duplicate_insert_rejected(tree):
    tree.insert(1, b"a")
    with pytest.raises(DuplicateKeyError):
        tree.insert(1, b"b")


def test_replace(tree):
    tree.insert(1, b"old")
    tree.replace(1, b"new record that is long enough to live in the heap")
    assert tree.lookup(1) == b"new record that is long enough to live in the heap"
    with pytest.raises(KeyNotFoundError):
        tree.replace(2, b"x")


def test_delete(tree):
    tree.insert(1, b"a")
    tree.insert(2, b"b")
    tree.delete(1)
    assert len(tree) == 1
    with pytest.raises(KeyNotFoundError):
        tree.lookup(1)
    assert tree.lookup(2) == b"b"
    with pytest.raises(KeyNotFoundError):
        tree.delete(99)


def test_contains(tree):
    tree.insert(7, b"x")
    assert tree.contains(7)
    assert not tree.contains(8)


def test_many_inserts_split_leaves(tree):
    for key in range(2000):
        tree.insert(key, f"record-{key}".encode() * 3)
    assert len(tree) == 2000
    assert tree.height >= 2
    for key in (0, 999, 1999):
        assert tree.lookup(key) == f"record-{key}".encode() * 3


def test_reverse_order_inserts(tree):
    for key in reversed(range(500)):
        tree.insert(key, f"r{key}".encode() * 10)
    assert [k for k, _ in tree.items()] == list(range(500))


def test_items_iterates_in_key_order(tree):
    import random

    rng = random.Random(7)
    keys = rng.sample(range(10000), 800)
    for key in keys:
        tree.insert(key, f"value-{key}".encode())
    got = list(tree.items())
    assert [k for k, _ in got] == sorted(keys)
    assert all(v == f"value-{k}".encode() for k, v in got)


def test_bulk_load_roundtrip(fs):
    tree = BTreeKeyedFile(fs.create("bulk"))
    items = [(k, f"record {k} ".encode() * (1 + k % 7)) for k in range(0, 6000, 2)]
    tree.bulk_load(items)
    assert len(tree) == len(items)
    assert tree.lookup(0) == items[0][1]
    assert tree.lookup(5998) == items[-1][1]
    with pytest.raises(KeyNotFoundError):
        tree.lookup(1)
    assert list(tree.items()) == items


def test_bulk_load_requires_sorted_unique(fs):
    tree = BTreeKeyedFile(fs.create("bad"))
    with pytest.raises(BTreeError):
        tree.bulk_load([(2, b"a"), (1, b"b")])
    tree2 = BTreeKeyedFile(fs.create("bad2"))
    with pytest.raises(BTreeError):
        tree2.bulk_load([(1, b"a"), (1, b"b")])


def test_bulk_load_requires_empty_tree(tree):
    tree.insert(1, b"a")
    with pytest.raises(BTreeError):
        tree.bulk_load([(2, b"b")])


def test_bulk_load_empty_input(fs):
    tree = BTreeKeyedFile(fs.create("empty"))
    tree.bulk_load([])
    assert len(tree) == 0
    assert list(tree.items()) == []


def test_height_grows_with_size(fs):
    small = BTreeKeyedFile(fs.create("small"), interior_order=8)
    small.bulk_load((k, b"x" * 120) for k in range(200))
    big = BTreeKeyedFile(fs.create("big"), interior_order=8)
    big.bulk_load((k, b"x" * 120) for k in range(5000))
    assert big.height > small.height


def test_persistence_reopen(fs):
    f = fs.create("persist")
    tree = BTreeKeyedFile(f)
    tree.bulk_load((k, f"rec{k}".encode() * 4) for k in range(300))
    reopened = BTreeKeyedFile(f)
    assert len(reopened) == 300
    assert reopened.lookup(123) == b"rec123" * 4
    assert reopened.height == tree.height


def test_lookup_counts_record_lookups(tree):
    tree.insert(1, b"a")
    tree.lookup(1)
    tree.lookup(1)
    assert tree.record_lookups == 2


def test_root_is_cached_across_lookups(fs):
    f = fs.create("cached")
    tree = BTreeKeyedFile(f)
    tree.bulk_load((k, b"v" * 200) for k in range(3000))
    assert tree.height >= 2
    before = f.stats.read_calls
    tree.lookup(1500)
    accesses = f.stats.read_calls - before
    # height-1 non-root node reads + 1 heap record read, root from memory
    assert accesses == tree.height - 1 + 1


def test_keys_iterator_matches_items(tree):
    for k in range(0, 100, 3):
        tree.insert(k, b"z" * 50)
    assert list(tree.keys()) == [k for k, _ in tree.items()]


def test_file_size_reported(tree):
    tree.insert(1, b"a" * 10000)
    assert tree.file_size > 10000


def test_rejects_bad_parameters(fs):
    with pytest.raises(BTreeError):
        BTreeKeyedFile(fs.create("x1"), interior_order=2)
    with pytest.raises(BTreeError):
        BTreeKeyedFile(fs.create("x2"), inline_max=-1)
