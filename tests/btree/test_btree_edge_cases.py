"""Edge-case tests for the B-tree keyed file."""

import pytest

from repro.btree import BTreeKeyedFile
from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def fs():
    return SimFileSystem(SimDisk(SimClock()), cache_blocks=64)


def test_delete_then_reinsert_same_key(fs):
    tree = BTreeKeyedFile(fs.create("t"))
    tree.insert(5, b"first")
    tree.delete(5)
    tree.insert(5, b"second")
    assert tree.lookup(5) == b"second"
    assert len(tree) == 1


def test_replace_smaller_then_larger(fs):
    tree = BTreeKeyedFile(fs.create("t"))
    tree.insert(1, b"x" * 1000)
    tree.replace(1, b"y")            # shrink to inline
    assert tree.lookup(1) == b"y"
    tree.replace(1, b"z" * 5000)     # grow back to heap
    assert tree.lookup(1) == b"z" * 5000


def test_heap_space_leaks_on_replace(fs):
    """The paper's space-management problem, observable."""
    tree = BTreeKeyedFile(fs.create("t"))
    tree.insert(1, b"a" * 1000)
    size_before = tree.file_size
    tree.replace(1, b"b" * 1000)
    assert tree.file_size > size_before  # old extent not reclaimed


def test_incremental_inserts_then_reopen_after_splits(fs):
    f = fs.create("t")
    tree = BTreeKeyedFile(f, page_size=512, interior_order=8)
    for key in range(500):
        tree.insert(key * 3, f"value-{key}".encode())
    assert tree.height >= 3
    reopened = BTreeKeyedFile(f, page_size=512, interior_order=8)
    assert len(reopened) == 500
    assert reopened.height == tree.height
    for key in (0, 300, 1497):
        assert reopened.lookup(key) == f"value-{key // 3}".encode()
    reopened.insert(100000, b"late")
    assert reopened.lookup(100000) == b"late"


def test_bulk_then_incremental_mix(fs):
    tree = BTreeKeyedFile(fs.create("t"))
    tree.bulk_load((k, f"bulk{k}".encode()) for k in range(0, 1000, 2))
    for key in range(1, 1000, 20):
        tree.insert(key, f"incr{key}".encode())
    assert tree.lookup(500) == b"bulk500"
    assert tree.lookup(21) == b"incr21"
    keys = list(tree.keys())
    assert keys == sorted(keys)
    assert len(keys) == len(tree)


def test_single_key_tree(fs):
    tree = BTreeKeyedFile(fs.create("t"))
    tree.bulk_load([(7, b"only")])
    assert tree.height == 1
    assert tree.lookup(7) == b"only"
    assert list(tree.items()) == [(7, b"only")]


def test_zero_length_record(fs):
    tree = BTreeKeyedFile(fs.create("t"))
    tree.insert(1, b"")
    assert tree.lookup(1) == b""


def test_max_uint32_key(fs):
    tree = BTreeKeyedFile(fs.create("t"))
    key = 2**32 - 1
    tree.insert(key, b"edge")
    assert tree.lookup(key) == b"edge"


def test_duplicate_after_bulk_load(fs):
    tree = BTreeKeyedFile(fs.create("t"))
    tree.bulk_load([(1, b"a"), (2, b"b")])
    with pytest.raises(DuplicateKeyError):
        tree.insert(2, b"dup")


def test_interleaved_delete_during_iteration_state(fs):
    tree = BTreeKeyedFile(fs.create("t"))
    for key in range(100):
        tree.insert(key, b"v%d" % key)
    for key in range(0, 100, 2):
        tree.delete(key)
    remaining = [k for k, _v in tree.items()]
    assert remaining == list(range(1, 100, 2))
    for key in range(0, 100, 2):
        with pytest.raises(KeyNotFoundError):
            tree.lookup(key)


def test_record_spanning_many_blocks(fs):
    tree = BTreeKeyedFile(fs.create("t"))
    big = bytes(range(256)) * 4096  # 1 MB record
    tree.insert(1, big)
    fs.chill()
    assert tree.lookup(1) == big
