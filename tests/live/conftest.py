"""Fixtures: one tiny collection and its live-corpus document source.

The live-ingest tests compare every query against a stop-the-world
rebuild of the exact epoch corpus, so rebuild cost dominates; the
collection is kept small enough that a from-scratch build is cheap and
the interleaving property tests can rebuild dozens of times.
"""

import pytest

from repro.core import config_by_name, prepare_collection
from repro.live import LiveCorpus
from repro.synth import (
    CollectionProfile,
    QueryProfile,
    SyntheticCollection,
    generate_query_set,
)

TINY = CollectionProfile(
    name="tiny-live", models="test", documents=120, mean_doc_length=40,
    doc_length_sigma=0.5, vocab_size=900, seed=73,
)


@pytest.fixture(scope="session")
def collection():
    return SyntheticCollection(TINY)


@pytest.fixture(scope="session")
def corpus(collection):
    return LiveCorpus(collection)


@pytest.fixture(scope="session")
def prepared(collection):
    return prepare_collection(collection)


@pytest.fixture(scope="session")
def config():
    # WAL on: every published epoch must seal an epoch-commit marker.
    return config_by_name("mneme-linked", use_wal=True)


@pytest.fixture(scope="session")
def queries(collection):
    query_set = generate_query_set(
        collection,
        QueryProfile(name="live-natural", style="natural", n_queries=6,
                     mean_terms=4, seed=211),
    )
    return query_set.queries


@pytest.fixture(scope="session")
def daat_queries(collection):
    query_set = generate_query_set(
        collection,
        QueryProfile(name="live-weighted", style="weighted", n_queries=4,
                     mean_terms=4, seed=223),
    )
    from repro.bench.wallclock import _daat_queries

    return _daat_queries(query_set.queries)[:3]
