"""Property tests: the term cache under random ingest interleavings.

For any interleaving of document adds, tombstone deletes, compactions,
and queries — flat or sharded (N ∈ {1, 2}) — an engine carrying a
persistent decoded-term cache must serve rankings and evaluation
counters bit-identical to a cache-free engine reading the same live
index at every step.  The cached side follows the service's lifecycle
discipline: each ingest batch invalidates the mutated terms of the
owning shard, and each compaction folds the outgoing tombstones into
the surviving entries (nothing is dropped).  Any stale entry the
lifecycle misses would surface as a ranking that disagrees with the
cache-free read.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core import materialize
from repro.inquery import DEFAULT_TOP_K, DocumentAtATimeEngine, RetrievalEngine
from repro.live import IngestPipeline
from repro.serve.termcache import TermCache

BUDGET = 1 << 20

ops_st = st.lists(
    st.sampled_from(["add", "delete", "query", "compact"]),
    min_size=2,
    max_size=7,
)


def _observe(result):
    return (
        result.ranking,
        getattr(result, "documents_scored", None),
        getattr(result, "documents_skipped", None),
        getattr(result, "blocks_skipped", None),
    )


class _FlatHarness:
    """One flat backend; a cached engine pair beside cache-free reads."""

    def __init__(self, backend, config):
        self.backend = backend
        self.cache = TermCache(BUDGET)
        self.taat = RetrievalEngine(
            backend.index, top_k=DEFAULT_TOP_K,
            use_reservation=config.use_reservation,
            use_fastpath=config.use_fastpath,
        )
        self.taat.term_cache = self.cache
        self.daat = DocumentAtATimeEngine(
            backend.index, top_k=DEFAULT_TOP_K,
            use_fastpath=config.use_fastpath, prune="auto",
        )
        self.daat.term_cache = self.cache
        self.config = config

    def on_ingest(self, report):
        self.cache.invalidate_terms(report.mutated_terms.get(0, ()))
        self.cache.note_epoch(report.epoch)

    def tombstone_snapshot(self):
        return {0: set(self.backend.index.tombstones)}

    def on_compact(self, folded):
        self.cache.fold_tombstones(folded.get(0, ()))

    def cached(self, queries, daat_queries):
        return (
            [_observe(self.taat.run_query(t)) for t in queries]
            + [_observe(self.daat.run_query(t)) for t in daat_queries]
        )

    def fresh(self, queries, daat_queries):
        taat = RetrievalEngine(
            self.backend.index, top_k=DEFAULT_TOP_K,
            use_reservation=self.config.use_reservation,
            use_fastpath=self.config.use_fastpath,
        )
        daat = DocumentAtATimeEngine(
            self.backend.index, top_k=DEFAULT_TOP_K,
            use_fastpath=self.config.use_fastpath, prune="auto",
        )
        return (
            [_observe(taat.run_query(t)) for t in queries]
            + [_observe(daat.run_query(t)) for t in daat_queries]
        )

    @property
    def lookups(self):
        return self.cache.stats.lookups


class _ShardedHarness:
    """One sharded backend; a persistent cached scheduler beside
    per-step cache-free schedulers."""

    def __init__(self, backend, config):
        self.backend = backend
        self.scheduler = backend.scheduler(
            top_k=DEFAULT_TOP_K, engine="taat", term_cache_bytes=BUDGET
        )
        self.daat_scheduler = backend.scheduler(
            top_k=DEFAULT_TOP_K, engine="daat", prune="auto",
            term_cache_bytes=BUDGET,
        )

    def on_ingest(self, report):
        for shard_id, terms in report.mutated_terms.items():
            self.scheduler.invalidate_terms(shard_id, terms)
            self.daat_scheduler.invalidate_terms(shard_id, terms)
        self.scheduler.note_epoch(report.epoch)
        self.daat_scheduler.note_epoch(report.epoch)

    def tombstone_snapshot(self):
        return {
            shard_id: set(
                self.backend.replica(
                    shard_id, self.backend.healthy_replicas(shard_id)[0]
                ).index.tombstones
            )
            for shard_id in self.backend.live_shards
        }

    def on_compact(self, folded):
        self.scheduler.fold_term_tombstones(folded)
        self.daat_scheduler.fold_term_tombstones(folded)

    def cached(self, queries, daat_queries):
        taat = self.scheduler.run_wave(list(queries)).results
        daat = self.daat_scheduler.run_wave(list(daat_queries)).results
        return [_observe(r) for r in taat] + [_observe(r) for r in daat]

    def fresh(self, queries, daat_queries):
        taat = self.backend.scheduler(
            top_k=DEFAULT_TOP_K, engine="taat"
        ).run_wave(list(queries)).results
        daat = self.backend.scheduler(
            top_k=DEFAULT_TOP_K, engine="daat", prune="auto"
        ).run_wave(list(daat_queries)).results
        return [_observe(r) for r in taat] + [_observe(r) for r in daat]

    @property
    def lookups(self):
        return sum(
            cache.stats.lookups
            for _s, _r, cache in self.scheduler.term_caches()
        ) + sum(
            cache.stats.lookups
            for _s, _r, cache in self.daat_scheduler.term_caches()
        )


def run_interleaving(
    ops, n_shards, prepared, corpus, config, queries, daat_queries
):
    if n_shards:
        backend = materialize(
            prepared, config, shards=n_shards,
            replicas=1 if n_shards > 1 else 0,
        )
        harness = _ShardedHarness(backend, config)
    else:
        backend = materialize(prepared, config)
        harness = _FlatHarness(backend, config)
    pipeline = IngestPipeline(backend)
    next_id = corpus.base_count + 256  # clear of other tests' extra ids
    queried = False
    for op in ops:
        if op == "add":
            harness.on_ingest(
                pipeline.apply(adds=corpus.new_documents(2, after=next_id))
            )
            next_id += 2
        elif op == "delete":
            live = sorted(pipeline.epochs.live_docs())
            if len(live) <= 2:
                continue
            harness.on_ingest(
                pipeline.apply(deletes=corpus.documents_for(live[:1]))
            )
        elif op == "compact":
            folded = harness.tombstone_snapshot()
            pipeline.compact()
            harness.on_compact(folded)
        else:
            queried = True
            assert harness.cached(queries, daat_queries) == harness.fresh(
                queries, daat_queries
            )
    # Terminal check: whatever state the interleaving ended in matches.
    assert harness.cached(queries, daat_queries) == harness.fresh(
        queries, daat_queries
    )
    assert harness.lookups > 0
    del queried


@given(ops=ops_st)
@settings(max_examples=10, deadline=None)
def test_flat_cached_interleavings_match_fresh(
    ops, prepared, corpus, config, queries, daat_queries
):
    run_interleaving(
        ops, 0, prepared, corpus, config, queries, daat_queries
    )


@pytest.mark.parametrize("n_shards", [1, 2])
@given(ops=ops_st)
@settings(max_examples=6, deadline=None)
def test_sharded_cached_interleavings_match_fresh(
    n_shards, ops, prepared, corpus, config, queries, daat_queries
):
    run_interleaving(
        ops, n_shards, prepared, corpus, config, queries, daat_queries
    )
