"""Property tests: random mutation/query/compaction interleavings.

For any interleaving of document adds, tombstone deletes, compactions,
and queries — flat or sharded (N ∈ {1, 2}) — every query's rankings
must be bit-identical to a stop-the-world rebuild of the corpus as of
the epoch current at that point, and compaction must never change a
ranking.  Rebuild references are cached by live-document set, since
many interleavings pass through the same corpus states.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core import materialize
from repro.inquery import DEFAULT_TOP_K, DocumentAtATimeEngine, RetrievalEngine
from repro.live import IngestPipeline, reference_rankings

#: Queries fixed per run (from the conftest query fixtures, bound lazily
#: so hypothesis never regenerates them per example).
_REF_CACHE = {}

ops_st = st.lists(
    st.sampled_from(["add", "delete", "query", "compact"]),
    min_size=2,
    max_size=7,
)


def _reference(config, corpus, live_ids, queries, engine):
    key = (frozenset(live_ids), tuple(queries), engine)
    if key not in _REF_CACHE:
        _REF_CACHE[key] = reference_rankings(
            config, corpus.documents_for(live_ids), list(queries),
            engine=engine,
        )
    return _REF_CACHE[key]


def _live(backend, queries, sharded, engine, prune="off"):
    if sharded:
        outcome = backend.scheduler(
            top_k=DEFAULT_TOP_K, engine=engine, prune=prune
        ).run_wave(list(queries))
        return {t: r.ranking for t, r in zip(queries, outcome.results)}
    if engine == "daat":
        runner = DocumentAtATimeEngine(
            backend.index, top_k=DEFAULT_TOP_K, prune=prune
        )
    else:
        runner = RetrievalEngine(backend.index, top_k=DEFAULT_TOP_K)
    return {t: runner.run_query(t).ranking for t in queries}


def run_interleaving(
    ops, n_shards, prepared, corpus, config, queries, daat_queries
):
    if n_shards:
        backend = materialize(
            prepared, config, shards=n_shards,
            replicas=1 if n_shards > 1 else 0,
        )
    else:
        backend = materialize(prepared, config)
    sharded = bool(n_shards)
    pipeline = IngestPipeline(backend)
    next_id = corpus.base_count + 64  # clear of other tests' extra ids
    for op in ops:
        if op == "add":
            pipeline.apply(adds=corpus.new_documents(2, after=next_id))
            next_id += 2
        elif op == "delete":
            live = sorted(pipeline.epochs.live_docs())
            if len(live) <= 2:
                continue
            pipeline.apply(deletes=corpus.documents_for(live[:1]))
        elif op == "compact":
            before = _live(backend, queries, sharded, "taat")
            pipeline.compact()
            assert _live(backend, queries, sharded, "taat") == before
        else:  # query: pin the current epoch, compare to its rebuild
            live_ids = pipeline.epochs.live_docs()
            assert _live(backend, queries, sharded, "taat") == _reference(
                config, corpus, live_ids, queries, "taat"
            )
            assert _live(
                backend, daat_queries, sharded, "daat", prune="auto"
            ) == _reference(config, corpus, live_ids, daat_queries, "daat")
    # Terminal check: whatever state the interleaving ended in matches.
    live_ids = pipeline.epochs.live_docs()
    assert _live(backend, queries, sharded, "taat") == _reference(
        config, corpus, live_ids, queries, "taat"
    )


@given(ops=ops_st)
@settings(max_examples=15, deadline=None)
def test_flat_interleavings_match_rebuilds(
    ops, prepared, corpus, config, queries, daat_queries
):
    run_interleaving(
        ops, 0, prepared, corpus, config, queries, daat_queries
    )


@pytest.mark.parametrize("n_shards", [1, 2])
@given(ops=ops_st)
@settings(max_examples=8, deadline=None)
def test_sharded_interleavings_match_rebuilds(
    n_shards, ops, prepared, corpus, config, queries, daat_queries
):
    run_interleaving(
        ops, n_shards, prepared, corpus, config, queries, daat_queries
    )
