"""Bounds-sidecar audit: mutations must never make pruning inadmissible.

The pruning engine trusts two per-term ceilings: the dictionary's
``max_tf`` and the chunk-bounds sidecar.  The audit of every mutation
path concluded:

* ``add_document_incremental`` max-merges the new document's tf into a
  *known* bound and refreshes the sidecar from the rewritten record, so
  the bound stays exact-or-high.  An *unknown* bound (``max_tf == 0``)
  stays unknown — it must never be "upgraded" from one document's tf,
  which would be an under-estimate.
* ``remove_document_incremental`` decodes every affected record anyway,
  so it recomputes the exact ceiling and refreshes the sidecar.
* ``tombstone_document_incremental`` touches no record, leaving bounds
  stale-HIGH over the filtered postings — admissible by construction
  (a too-high bound can only under-prune, never over-prune).
* ``fold_tombstones`` restores exact bounds.

These tests pin each of those conclusions: after any mutation mix, the
stored bound dominates the true live maximum, and pruned rankings stay
bit-identical to exhaustive evaluation.
"""

import pytest

from repro.inquery import (
    Document,
    DocumentAtATimeEngine,
    add_document_incremental,
    fold_tombstones,
    remove_document_incremental,
    tombstone_document_incremental,
)
from repro.inquery.postings import decode_record

from .test_tombstones import CORPUS, QUERIES, build, docs, rankings


def live_max_tf(index, term):
    """The true ceiling over the term's *live* (unfiltered) postings."""
    entry = index.dictionary.lookup(term)
    if entry is None or entry.storage_key == 0:
        return 0
    postings = decode_record(index.store.fetch(entry.storage_key))
    return max(
        (len(p) for doc, p in postings if doc not in index.tombstones),
        default=0,
    )


def assert_bounds_admissible(index):
    for entry in index.dictionary.entries():
        if entry.max_tf == 0:
            continue  # unknown: the engine never prunes on it
        assert entry.max_tf >= live_max_tf(index, entry.term), entry.term


def assert_pruning_exact(index):
    for query in QUERIES:
        exhaustive = DocumentAtATimeEngine(index, top_k=10).run_query(query)
        pruned = DocumentAtATimeEngine(
            index, top_k=10, prune="auto"
        ).run_query(query)
        assert pruned.ranking == exhaustive.ranking, query


@pytest.mark.parametrize("linked", [False, True])
def test_mutation_mix_keeps_bounds_admissible(linked):
    documents = docs()
    index = build(documents, linked=linked)
    # Interleave every mutation kind.
    add_document_incremental(index, Document(7, tokens=["t0", "t0", "t0", "t1"]))
    tombstone_document_incremental(index, documents[0])  # doc 1 had t0 x3
    add_document_incremental(index, Document(8, tokens=["t6", "t2"]))
    remove_document_incremental(index, 4)                # doc 4 had t6 x3
    assert_bounds_admissible(index)
    assert_pruning_exact(index)
    # Folding restores *exact* ceilings, still bit-identical.
    before = rankings(index, QUERIES)
    fold_tombstones(index)
    for entry in index.dictionary.entries():
        assert entry.max_tf == live_max_tf(index, entry.term), entry.term
    assert rankings(index, QUERIES) == before


def test_tombstone_leaves_bounds_stale_high_never_low():
    """Deleting the max-tf document leaves the old (higher) ceiling."""
    documents = docs()
    index = build(documents)
    entry = index.dictionary.lookup("t0")
    assert entry.max_tf == 3  # doc 1 carries t0 three times
    tombstone_document_incremental(index, documents[0])
    assert index.dictionary.lookup("t0").max_tf == 3  # stale
    assert live_max_tf(index, "t0") < 3               # truth shrank
    assert_bounds_admissible(index)
    assert_pruning_exact(index)


def test_incremental_add_never_invents_a_bound():
    """An unknown bound must stay unknown through an incremental add.

    If the add "initialised" max_tf from the new document alone, a term
    whose *existing* postings carry a higher tf would get an
    inadmissible (too-low) ceiling and pruning could drop a true top-k
    document.
    """
    documents = docs()
    index = build(documents)
    victim = index.dictionary.lookup("t0")
    victim.max_tf = 0  # simulate a legacy index with no recorded bound
    add_document_incremental(index, Document(7, tokens=["t0"]))
    assert index.dictionary.lookup("t0").max_tf == 0
    assert_pruning_exact(index)


def test_remove_recomputes_exact_bounds():
    documents = docs()
    index = build(documents)
    remove_document_incremental(index, 1)  # decode-rewrite path
    for term in ("t0", "t1", "t2"):
        entry = index.dictionary.lookup(term)
        assert entry.max_tf == live_max_tf(index, term), term
    assert_pruning_exact(index)
