"""Tombstone deletes: exact statistics, invisible documents, clean folds.

A tombstone delete must make the document vanish from every evaluation
path — term-at-a-time (reference and fast), document-at-a-time
(streamed and pruned) — with dictionary df/ctf adjusted *exactly* (so
idf matches a rebuild without the document), all without decoding a
single record.  Folding the tombstones out must change nothing a query
can observe.
"""

import pytest

from repro.errors import IndexError_
from repro.fastpath import use_fastpath
from repro.inquery import (
    Document,
    DocumentAtATimeEngine,
    IndexBuilder,
    LinkedMnemeInvertedFile,
    MnemeInvertedFile,
    RetrievalEngine,
    add_document_incremental,
    fold_tombstones,
    tombstone_document_incremental,
)
from repro.inquery.indexer import CollectionIndex
from repro.mneme import RedoLog
from repro.simdisk import SimClock, SimDisk, SimFileSystem

VOCAB = [f"t{i}" for i in range(10)]

CORPUS = [
    ["t0", "t1", "t2", "t0", "t0"],
    ["t1", "t2", "t3"],
    ["t0", "t4", "t4", "t5"],
    ["t2", "t3", "t6", "t6", "t6"],
    ["t0", "t1", "t7"],
    ["t8", "t9", "t0", "t1"],
]


def docs(corpus=CORPUS):
    return [
        Document(doc_id, tokens=tokens)
        for doc_id, tokens in enumerate(corpus, start=1)
    ]


def build(documents, linked=False, wal=False):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    log = RedoLog(fs.create("invfile.wal")) if wal else None
    if linked:
        store = LinkedMnemeInvertedFile(
            fs, medium_max_bytes=24, chunk_bytes=64, wal=log
        )
    else:
        store = MnemeInvertedFile(fs, wal=log)
    builder = IndexBuilder(fs, store, stopwords=(), stem_fn=str)
    for document in documents:
        builder.add_document(document)
    return builder.finalize()


def rankings(index, queries, k=10):
    out = {}
    for query in queries:
        out[("taat", query)] = RetrievalEngine(index, top_k=k).run_query(
            query
        ).ranking
        out[("daat", query)] = DocumentAtATimeEngine(
            index, top_k=k
        ).run_query(query).ranking
        out[("prune", query)] = DocumentAtATimeEngine(
            index, top_k=k, prune="auto"
        ).run_query(query).ranking
    return out


QUERIES = ["#sum( t0 t1 t2 )", "#sum( t4 t6 )", "#wsum( 3 t0 1 t3 2 t6 )"]


@pytest.mark.parametrize("linked", [False, True])
@pytest.mark.parametrize("fast", [False, True])
def test_delete_equals_rebuild_without_the_document(linked, fast):
    documents = docs()
    live = build(documents, linked=linked)
    with use_fastpath(fast):
        tombstone_document_incremental(live, documents[2])  # doc 3
        got = rankings(live, QUERIES)
        reference = rankings(
            build([d for d in documents if d.doc_id != 3], linked=linked),
            QUERIES,
        )
    assert got == reference
    assert not any(doc == 3 for r in got.values() for doc, _ in r)


def test_dictionary_stats_are_exact_after_delete():
    documents = docs()
    live = build(documents)
    tombstone_document_incremental(live, documents[0])  # doc 1: t0 x3, t1, t2
    reference = build([d for d in documents if d.doc_id != 1])
    for term in VOCAB:
        entry = live.dictionary.lookup(term)
        expected = reference.dictionary.lookup(term)
        if entry is None:
            assert expected is None
            continue
        assert (entry.df, entry.ctf) == (
            (expected.df, expected.ctf) if expected is not None else (0, 0)
        ), term
    assert live.stats.documents == reference.stats.documents
    assert 1 not in live.doctable
    assert live.tombstones == {1}


def test_fold_tombstones_changes_nothing_observable():
    documents = docs()
    live = build(documents, linked=True)
    tombstone_document_incremental(live, documents[1])
    tombstone_document_incremental(live, documents[4])
    before = rankings(live, QUERIES)
    rewritten = fold_tombstones(live)
    assert rewritten > 0
    assert live.tombstones == set()
    assert rankings(live, QUERIES) == before
    # Folded records really lost the postings: exact max_tf everywhere.
    from repro.inquery.postings import decode_record

    for entry in live.dictionary.entries():
        if entry.storage_key == 0:
            continue
        postings = decode_record(live.store.fetch(entry.storage_key))
        assert all(doc not in (2, 5) for doc, _ in postings)
        assert entry.max_tf == max(
            (len(p) for _d, p in postings), default=0
        )


def test_delete_validation():
    documents = docs()
    live = build(documents)
    with pytest.raises(IndexError_):
        tombstone_document_incremental(
            live, Document(99, tokens=["t0"])
        )
    tombstone_document_incremental(live, documents[0])
    with pytest.raises(IndexError_):  # double delete
        tombstone_document_incremental(live, documents[0])
    with pytest.raises(IndexError_):  # token stream does not match
        tombstone_document_incremental(
            live, Document(2, tokens=["t1"])
        )
    with pytest.raises(IndexError_):  # tombstoned ids are not reusable
        add_document_incremental(live, Document(1, tokens=["t5"]))


def test_tombstones_survive_save_and_open():
    documents = docs()
    live = build(documents, linked=False)
    tombstone_document_incremental(live, documents[3])
    live.save()
    reopened = CollectionIndex.open(
        live.fs, live.store, stopwords=(), stem_fn=str
    )
    assert reopened.tombstones == {4}
    assert rankings(reopened, QUERIES) == rankings(live, QUERIES)


def test_empty_tombstone_set_costs_nothing():
    """No tombstones: the decode path is byte-for-byte the old one."""
    documents = docs()
    a, b = build(documents), build(documents)
    clock_a = a.fs.disk.clock.snapshot()
    ra = rankings(a, QUERIES)
    cost_a = a.fs.disk.clock.since(clock_a).wall_ms
    b.tombstones.clear()
    clock_b = b.fs.disk.clock.snapshot()
    rb = rankings(b, QUERIES)
    cost_b = b.fs.disk.clock.since(clock_b).wall_ms
    assert ra == rb
    assert cost_a == cost_b
