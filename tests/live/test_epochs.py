"""EpochManager unit semantics: publication, history, validation."""

import pytest

from repro.errors import ConfigError, IndexError_
from repro.live import EpochManager


def test_epoch_zero_is_the_base_corpus():
    manager = EpochManager.for_corpus([1, 2, 3])
    assert manager.epoch == 0
    assert manager.pin() == 0
    assert manager.live_docs() == frozenset({1, 2, 3})
    assert manager.live_docs(0) == frozenset({1, 2, 3})


def test_publish_advances_and_snapshots():
    manager = EpochManager.for_corpus([1, 2, 3])
    record = manager.publish(added=[4, 5], deleted=[1])
    assert record.epoch == 1 == manager.epoch
    assert record.live_docs == frozenset({2, 3, 4, 5})
    assert record.added == (4, 5) and record.deleted == (1,)
    # Epoch 0's snapshot is immutable history, not a live alias.
    assert manager.live_docs(0) == frozenset({1, 2, 3})
    manager.publish(added=[6])
    assert manager.live_docs(1) == frozenset({2, 3, 4, 5})
    assert manager.live_docs() == frozenset({2, 3, 4, 5, 6})


def test_publish_validates_against_the_live_set():
    manager = EpochManager.for_corpus([1, 2])
    with pytest.raises(IndexError_):
        manager.publish(added=[2])       # already live
    with pytest.raises(IndexError_):
        manager.publish(deleted=[9])     # never existed
    # A failed publish must not advance anything.
    assert manager.epoch == 0
    assert manager.live_docs() == frozenset({1, 2})


def test_unpublished_epoch_is_an_error():
    manager = EpochManager.for_corpus([1])
    with pytest.raises(IndexError_):
        manager.record(3)
    with pytest.raises(IndexError_):
        manager.live_docs(1)


def test_shard_epochs_count_only_touched_shards():
    manager = EpochManager.for_corpus([1, 2], n_shards=3)
    assert manager.shard_epochs == [0, 0, 0]
    manager.publish(added=[3], shards_touched=[1])
    manager.publish(added=[4], shards_touched=[0, 1])
    assert manager.shard_epochs == [1, 2, 0]
    assert manager.epoch == 2
    with pytest.raises(ConfigError):
        manager.publish(added=[5], shards_touched=[3])


def test_n_shards_must_be_positive():
    with pytest.raises(ConfigError):
        EpochManager(n_shards=0)
