"""IngestPipeline integration: epochs, routing, replicas, compaction.

Every batch must publish atomically (index saved, WAL epoch marker,
epoch bumped), every query at any epoch must match a stop-the-world
rebuild of exactly that epoch's corpus, sharded mutations must keep
the global-statistics invariant and byte-identical mirrors, and the
serving layer must invalidate its cache exactly once per batch — and
never for a compaction.
"""

import pytest

from repro.core import materialize
from repro.core.config import config_by_name
from repro.errors import ConfigError, ServiceUnavailableError
from repro.inquery import DEFAULT_TOP_K, DocumentAtATimeEngine, RetrievalEngine
from repro.live import IngestPipeline, fresh_flat_index, reference_rankings
from repro.mneme import EPOCH_MARKER_OFFSET
from repro.serve import QueryService
from repro.synth.traffic import TimedRequest


def batches(corpus, n=2, adds=6, deletes=2):
    """A deterministic mutation plan over the tiny corpus."""
    next_id = corpus.base_count
    live = set(corpus.base_ids)
    plan = []
    for _ in range(n):
        add_docs = corpus.new_documents(adds, after=next_id)
        next_id += adds
        delete_ids = sorted(live)[:deletes]
        delete_docs = corpus.documents_for(delete_ids)
        live.update(d.doc_id for d in add_docs)
        live.difference_update(delete_ids)
        plan.append((add_docs, delete_docs))
    return plan


def live_rankings(backend, queries, sharded, engine="taat", prune="off"):
    if sharded:
        outcome = backend.scheduler(
            top_k=DEFAULT_TOP_K, engine=engine, prune=prune
        ).run_wave(queries)
        return {t: r.ranking for t, r in zip(queries, outcome.results)}
    if engine == "daat":
        runner = DocumentAtATimeEngine(
            backend.index, top_k=DEFAULT_TOP_K, prune=prune
        )
    else:
        runner = RetrievalEngine(backend.index, top_k=DEFAULT_TOP_K)
    return {t: runner.run_query(t).ranking for t in queries}


@pytest.mark.parametrize("shards,replicas", [(0, 0), (2, 1)])
def test_every_epoch_matches_its_rebuild(
    prepared, corpus, config, queries, daat_queries, shards, replicas
):
    if shards:
        backend = materialize(prepared, config, shards=shards, replicas=replicas)
    else:
        backend = materialize(prepared, config)
    pipeline = IngestPipeline(backend)
    for add_docs, delete_docs in batches(corpus):
        report = pipeline.apply(adds=add_docs, deletes=delete_docs)
        assert report.epoch == pipeline.epochs.epoch
        assert report.wal_marked
        if shards:
            assert report.groups_verified == shards
            assert all(0 <= s < shards for s in report.shards_touched)
        documents = corpus.documents_for(pipeline.epochs.live_docs())
        assert live_rankings(backend, queries, bool(shards)) == \
            reference_rankings(config, documents, queries)
        assert live_rankings(
            backend, daat_queries, bool(shards), engine="daat", prune="auto"
        ) == reference_rankings(
            config, documents, daat_queries, engine="daat"
        )


def test_past_epoch_snapshots_stay_checkable(prepared, corpus, config, queries):
    """A pinned query's reference is reconstructible after later batches."""
    backend = materialize(prepared, config)
    pipeline = IngestPipeline(backend)
    per_epoch = {}
    for add_docs, delete_docs in batches(corpus, n=3, adds=4, deletes=1):
        pipeline.apply(adds=add_docs, deletes=delete_docs)
        per_epoch[pipeline.epochs.epoch] = live_rankings(
            backend, queries, sharded=False
        )
    for epoch, captured in per_epoch.items():
        documents = corpus.documents_for(pipeline.epochs.live_docs(epoch))
        assert captured == reference_rankings(config, documents, queries), epoch


def test_wal_carries_the_epoch_marker(prepared, corpus, config):
    backend = materialize(prepared, config)
    pipeline = IngestPipeline(backend)
    add_docs, delete_docs = batches(corpus, n=1)[0]
    report = pipeline.apply(adds=add_docs, deletes=delete_docs)
    records, torn = backend.index.store.mfile.wal.records()
    assert not torn
    markers = [
        (offset, data) for offset, data in records
        if offset == EPOCH_MARKER_OFFSET
    ]
    assert len(markers) == 1
    from repro.mneme.recovery import _EPOCH_PAYLOAD

    assert _EPOCH_PAYLOAD.unpack(markers[0][1]) == (report.epoch,)
    # The marker seals the batch: it is the last record in the log.
    assert records[-1][0] == EPOCH_MARKER_OFFSET


def test_sharded_dictionary_statistics_stay_global(prepared, corpus, config):
    """Every shard's entry for a term carries the *global* df/ctf."""
    backend = materialize(prepared, config, shards=2, replicas=1)
    pipeline = IngestPipeline(backend)
    for add_docs, delete_docs in batches(corpus):
        pipeline.apply(adds=add_docs, deletes=delete_docs)
    documents = corpus.documents_for(pipeline.epochs.live_docs())
    reference = fresh_flat_index(config, documents).index
    checked = 0
    for group in backend.replica_groups:
        for machine in group:
            for entry in machine.index.dictionary.entries():
                expected = reference.dictionary.lookup(entry.term)
                if expected is None:
                    assert entry.df == 0, entry.term
                    continue
                assert (entry.df, entry.ctf) == (expected.df, expected.ctf), \
                    entry.term
                checked += 1
    assert checked > 0


def test_compaction_is_invisible_and_reclaims(prepared, corpus, config, queries):
    backend = materialize(prepared, config)
    pipeline = IngestPipeline(backend)
    for add_docs, delete_docs in batches(corpus):
        pipeline.apply(adds=add_docs, deletes=delete_docs)
    before = live_rankings(backend, queries, sharded=False)
    epoch_before = pipeline.epochs.epoch
    summary = pipeline.compact()
    assert summary.tombstones_folded == 4  # 2 batches x 2 deletes
    assert summary.records_rewritten > 0
    assert backend.index.tombstones == set()
    # Compaction publishes no epoch and changes no ranking.
    assert pipeline.epochs.epoch == epoch_before
    assert live_rankings(backend, queries, sharded=False) == before


def test_compaction_requires_a_mneme_backend(prepared, corpus):
    backend = materialize(prepared, config_by_name("btree"))
    with pytest.raises(ConfigError):
        IngestPipeline(backend).compact()


def test_service_ingest_invalidates_exactly_once(
    prepared, corpus, config, queries
):
    service = QueryService(materialize(prepared, config), workers=2)
    requests = [
        TimedRequest(text=t, arrival_ms=0.0, seq=i)
        for i, t in enumerate(queries)
    ]
    service.process(requests, name="warm")
    add_docs, delete_docs = batches(corpus, n=1)[0]
    report = service.ingest(adds=add_docs, deletes=delete_docs)
    assert report.epoch == 1
    assert service.stats.ingests == 1
    assert service.cache.stats.invalidations == 1
    # The first post-ingest pass re-evaluates (misses), and matches the
    # rebuild of the new corpus.
    run = service.process(requests, name="post-ingest")
    assert all(row.outcome != "hit" for row in run.served)
    documents = corpus.documents_for(
        service.ingest_pipeline.epochs.live_docs()
    )
    reference = reference_rankings(config, documents, queries)
    assert all(
        row.result.ranking == reference[row.text] for row in run.served
    )
    # Compaction never touches the cache: the next pass is all hits.
    service.compact()
    assert service.stats.compactions == 1
    assert service.cache.stats.invalidations == 1
    again = service.process(requests, name="post-compaction")
    assert all(row.outcome == "hit" for row in again.served)
    assert all(
        row.result.ranking == reference[row.text] for row in again.served
    )


def test_closed_service_refuses_mutations(prepared, corpus, config):
    service = QueryService(materialize(prepared, config))
    service.close()
    add_docs, _ = batches(corpus, n=1)[0]
    with pytest.raises(ServiceUnavailableError):
        service.ingest(adds=add_docs)
    with pytest.raises(ServiceUnavailableError):
        service.compact()
