"""Unit tests for synthetic term strings."""

import pytest
from hypothesis import given, strategies as st

from repro.inquery import tokenize
from repro.synth import term_rank, term_string


def test_first_terms():
    assert term_string(0) == "wa"
    assert term_string(1) == "wb"
    assert term_string(25) == "wz"
    assert term_string(26) == "wba"


def test_roundtrip_samples():
    for rank in (0, 25, 26, 675, 676, 123456):
        assert term_rank(term_string(rank)) == rank


@given(rank=st.integers(min_value=0, max_value=10**9))
def test_roundtrip_property(rank):
    assert term_rank(term_string(rank)) == rank


@given(a=st.integers(min_value=0, max_value=10**6), b=st.integers(min_value=0, max_value=10**6))
def test_unique(a, b):
    if a != b:
        assert term_string(a) != term_string(b)


def test_negative_rejected():
    with pytest.raises(ValueError):
        term_string(-1)


def test_bad_term_rejected():
    with pytest.raises(ValueError):
        term_rank("xavier")
    with pytest.raises(ValueError):
        term_rank("w")


def test_terms_survive_tokenizer():
    for rank in (0, 100, 99999):
        term = term_string(rank)
        assert tokenize(term) == [term]
