"""Unit and property tests for the Zipf samplers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.synth import ZipfSampler, rank_frequency_constant, zipf_mandelbrot_weights


def test_weights_normalized_and_decreasing():
    weights = zipf_mandelbrot_weights(1000)
    assert weights.sum() == pytest.approx(1.0)
    assert np.all(np.diff(weights) <= 0)


def test_bad_parameters_rejected():
    with pytest.raises(ConfigError):
        zipf_mandelbrot_weights(0)
    with pytest.raises(ConfigError):
        zipf_mandelbrot_weights(10, s=0)
    with pytest.raises(ConfigError):
        zipf_mandelbrot_weights(10, q=-1)


def test_sampler_deterministic_per_seed():
    a = ZipfSampler(500, seed=42).sample(1000)
    b = ZipfSampler(500, seed=42).sample(1000)
    c = ZipfSampler(500, seed=43).sample(1000)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_sampler_range():
    draws = ZipfSampler(100, seed=1).sample(10000)
    assert draws.min() >= 0
    assert draws.max() < 100


def test_sample_zero():
    assert len(ZipfSampler(10, seed=1).sample(0)) == 0


def test_negative_count_rejected():
    with pytest.raises(ConfigError):
        ZipfSampler(10, seed=1).sample(-1)


def test_head_terms_dominate():
    sampler = ZipfSampler(10000, seed=7)
    draws = sampler.sample(100000)
    counts = np.bincount(draws, minlength=10000)
    # Top 100 ranks should hold a large share of the token mass.
    assert counts[:100].sum() > 0.35 * len(draws)
    # And close to half the observed vocabulary occurs once or twice
    # (the paper's small object pool design point).
    observed = counts[counts > 0]
    rare = (observed <= 2).sum() / len(observed)
    assert 0.35 < rare < 0.75


def test_empirical_matches_theoretical_head():
    sampler = ZipfSampler(1000, s=1.1, q=2.0, seed=3)
    draws = sampler.sample(200000)
    counts = np.bincount(draws, minlength=1000)
    for rank in (0, 1, 2, 10):
        expected = sampler.probability(rank) * len(draws)
        assert counts[rank] == pytest.approx(expected, rel=0.15)


def test_rank_frequency_constant_on_ideal_zipf():
    # For pure Zipf (s=1) rank*frequency is constant by construction.
    frequencies = np.array([10000 / r for r in range(1, 2001)])
    _mean, cv = rank_frequency_constant(frequencies)
    assert cv < 0.05


@given(
    vocab=st.integers(min_value=2, max_value=2000),
    s=st.floats(min_value=0.8, max_value=1.5),
    q=st.floats(min_value=0.0, max_value=5.0),
)
@settings(max_examples=25, deadline=None)
def test_weights_property(vocab, s, q):
    weights = zipf_mandelbrot_weights(vocab, s, q)
    assert len(weights) == vocab
    assert weights.sum() == pytest.approx(1.0)
    assert np.all(weights > 0)
    assert np.all(np.diff(weights) <= 1e-18)
