"""Tests for informetric analysis and the file-design suggestions."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.synth import (
    CollectionProfile,
    SyntheticCollection,
    fit_heaps,
    fit_zipf,
    partition_report,
    profile_collection,
    suggest_small_threshold,
    vocabulary_growth,
)


@pytest.fixture(scope="module")
def collection():
    return SyntheticCollection(CollectionProfile(
        name="inf", models="t", documents=600, mean_doc_length=100,
        doc_length_sigma=0.5, vocab_size=15000, zipf_s=1.1, zipf_q=2.0, seed=55,
    ))


class TestZipfFit:
    def test_recovers_generation_parameters(self, collection):
        s, q = fit_zipf(collection.term_counts())
        assert 0.9 <= s <= 1.35   # generated with s=1.1
        assert 0.0 <= q <= 8.0

    def test_too_few_terms_rejected(self):
        with pytest.raises(ConfigError):
            fit_zipf(np.array([5, 3, 1]))


class TestHeaps:
    def test_growth_is_monotone(self, collection):
        tokens, vocab = vocabulary_growth(collection)
        assert tokens == sorted(tokens)
        assert vocab == sorted(vocab)
        assert len(tokens) == len(vocab) >= 2

    def test_heaps_fit_sublinear(self, collection):
        tokens, vocab = vocabulary_growth(collection)
        k, beta = fit_heaps(tokens, vocab)
        assert 0.3 < beta < 1.0   # vocabulary grows sublinearly
        assert k > 0

    def test_exact_power_law_recovered(self):
        ns = [10**i for i in range(2, 7)]
        vs = [int(3.5 * n**0.6) for n in ns]
        k, beta = fit_heaps(ns, vs)
        assert beta == pytest.approx(0.6, abs=0.02)
        assert k == pytest.approx(3.5, rel=0.1)

    def test_needs_two_points(self):
        with pytest.raises(ConfigError):
            fit_heaps([100], [50])

    def test_growth_needs_two_points(self, collection):
        with pytest.raises(ConfigError):
            vocabulary_growth(collection, points=1)


class TestProfile:
    def test_full_profile(self, collection):
        profile = profile_collection(collection)
        assert profile.tokens == collection.total_tokens
        assert profile.vocabulary == (collection.term_counts() > 0).sum()
        # Zipf's signature: a large singleton tail, a heavy head.
        assert 0.25 < profile.singleton_fraction < 0.8
        assert profile.doubleton_fraction > profile.singleton_fraction
        assert profile.top_percent_mass > 0.15
        assert 0.3 < profile.heaps_beta < 1.0


class TestFileDesignAdvice:
    def test_suggest_small_threshold_hits_target(self, collection):
        from repro.core import prepare_collection

        prepared = prepare_collection(collection)
        sizes = prepared.stats.record_sizes
        threshold = suggest_small_threshold(sizes, target_fraction=0.5)
        below = sum(1 for s in sizes if s <= threshold) / len(sizes)
        assert 0.45 <= below <= 0.65
        # And the suggested cut is in the neighbourhood of the paper's 12 B.
        assert 4 <= threshold <= 32

    def test_partition_report_shares_sum_to_one(self, collection):
        from repro.core import prepare_collection

        prepared = prepare_collection(collection)
        report = partition_report(prepared.stats.record_sizes, 12, 4096)
        assert sum(r["record_share"] for r in report.values()) == pytest.approx(1.0)
        assert sum(r["byte_share"] for r in report.values()) == pytest.approx(1.0)
        # The paper's observation: many records, few bytes, in "small".
        assert report["small"]["record_share"] > 0.35
        assert report["small"]["byte_share"] < report["small"]["record_share"]

    def test_bad_arguments(self):
        with pytest.raises(ConfigError):
            suggest_small_threshold([])
        with pytest.raises(ConfigError):
            suggest_small_threshold([1, 2], target_fraction=1.5)
        with pytest.raises(ConfigError):
            partition_report([1, 2], 100, 50)
        with pytest.raises(ConfigError):
            partition_report([], 12, 4096)
