"""Unit tests for synthetic collection generation."""

import numpy as np
import pytest

from repro.synth import CollectionProfile, PROFILES, SyntheticCollection


SMALL = CollectionProfile(
    name="tiny", models="test", documents=200, mean_doc_length=60,
    doc_length_sigma=0.5, vocab_size=3000, seed=5,
)


@pytest.fixture(scope="module")
def collection():
    return SyntheticCollection(SMALL)


def test_document_count(collection):
    assert len(collection) == 200
    assert len(collection.doc_tokens) == 200


def test_lengths_positive_and_near_mean(collection):
    assert collection.doc_lengths.min() >= 5
    assert 40 <= collection.doc_lengths.mean() <= 80


def test_total_tokens(collection):
    assert collection.total_tokens == sum(len(t) for t in collection.doc_tokens)


def test_deterministic():
    a = SyntheticCollection(SMALL)
    b = SyntheticCollection(SMALL)
    assert np.array_equal(a.doc_lengths, b.doc_lengths)
    assert all(np.array_equal(x, y) for x, y in zip(a.doc_tokens, b.doc_tokens))


def test_different_seeds_differ():
    import dataclasses

    other = dataclasses.replace(SMALL, seed=6)
    a = SyntheticCollection(SMALL)
    b = SyntheticCollection(other)
    assert not all(np.array_equal(x, y) for x, y in zip(a.doc_tokens, b.doc_tokens))


def test_term_counts_match_tokens(collection):
    counts = collection.term_counts()
    assert counts.sum() == collection.total_tokens
    # Zipf: rank 0 is the most frequent term.
    assert counts[0] == counts.max()


def test_flat_postings_consistent(collection):
    ranks, doc_ids, positions = collection.flat_postings()
    assert len(ranks) == len(doc_ids) == len(positions) == collection.total_tokens
    assert doc_ids.min() == 1
    assert doc_ids.max() == len(collection)
    # Positions restart at 0 in each document.
    first_doc = positions[doc_ids == 1]
    assert list(first_doc) == list(range(len(first_doc)))


def test_iter_documents(collection):
    docs = list(collection.iter_documents())
    assert len(docs) == 200
    assert docs[0].doc_id == 1
    assert len(docs[0].tokens) == collection.doc_lengths[0]
    assert all(t.startswith("w") for t in docs[0].tokens)


def test_fixed_length_profile():
    import dataclasses

    fixed = dataclasses.replace(SMALL, doc_length_sigma=0.0)
    c = SyntheticCollection(fixed)
    assert set(c.doc_lengths) == {60}


def test_standard_profiles_exist():
    assert set(PROFILES) == {"cacm-s", "legal-s", "tipster1-s", "tipster-s"}
    # Relative scale preserved: CACM smallest, TIPSTER largest.
    sizes = {
        name: p.documents * p.mean_doc_length for name, p in PROFILES.items()
    }
    assert sizes["cacm-s"] < sizes["legal-s"] < sizes["tipster1-s"] < sizes["tipster-s"]


def test_zipf_shape_half_vocabulary_rare(collection):
    counts = collection.term_counts()
    observed = counts[counts > 0]
    rare = (observed <= 2).sum() / len(observed)
    assert rare > 0.35  # "nearly half of the terms have only one or two occurrences"
