"""Properties of the synthetic traffic generators.

One seed, one stream: the arrival/class/deadline triple of every
request is a pure function of the profile, which is what lets the
serving layer call its shed set deterministic.  Hypothesis explores
the profile space for both load shapes (open-loop Poisson including
the ``rate_qps=0`` burst, and closed-loop think-time streams) and the
validation boundaries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.synth.traffic import (
    PRIORITIES,
    PRIORITY_RANK,
    ClosedLoopTraffic,
    TimedRequest,
    TrafficProfile,
    open_loop_requests,
)

POOL = [f"#sum(t{i:04d} t{i + 1:04d})" for i in range(0, 60, 2)]

open_profiles = st.builds(
    TrafficProfile,
    name=st.just("prop"),
    mode=st.just("open"),
    n_requests=st.integers(min_value=1, max_value=120),
    rate_qps=st.one_of(
        st.just(0.0), st.floats(min_value=1.0, max_value=500.0)
    ),
    repeat_rate=st.floats(min_value=0.0, max_value=0.95),
    deadline_ms=st.one_of(
        st.just(0.0), st.floats(min_value=0.5, max_value=200.0)
    ),
    batch_fraction=st.floats(min_value=0.0, max_value=1.0),
    batch_deadline_ms=st.one_of(
        st.just(0.0), st.floats(min_value=0.5, max_value=400.0)
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)

closed_profiles = st.builds(
    TrafficProfile,
    name=st.just("prop-closed"),
    mode=st.just("closed"),
    n_requests=st.integers(min_value=1, max_value=60),
    concurrency=st.integers(min_value=1, max_value=6),
    think_ms=st.one_of(
        st.just(0.0), st.floats(min_value=0.1, max_value=50.0)
    ),
    repeat_rate=st.floats(min_value=0.0, max_value=0.95),
    deadline_ms=st.one_of(
        st.just(0.0), st.floats(min_value=0.5, max_value=200.0)
    ),
    batch_fraction=st.floats(min_value=0.0, max_value=1.0),
    batch_deadline_ms=st.one_of(
        st.just(0.0), st.floats(min_value=0.5, max_value=400.0)
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)


@settings(max_examples=60, deadline=None)
@given(profile=open_profiles)
def test_open_loop_same_seed_same_stream(profile):
    """Texts, arrivals, classes, deadlines, seq: all reproduce exactly."""
    first = open_loop_requests(POOL, profile)
    second = open_loop_requests(POOL, profile)
    assert first == second


@settings(max_examples=60, deadline=None)
@given(profile=open_profiles)
def test_open_loop_request_wellformedness(profile):
    requests = open_loop_requests(POOL, profile)
    assert len(requests) == profile.n_requests
    assert [r.seq for r in requests] == list(range(profile.n_requests))
    arrivals = [r.arrival_ms for r in requests]
    assert arrivals == sorted(arrivals)
    if profile.rate_qps == 0.0:
        assert set(arrivals) == {0.0}  # burst: everything at t=0
    for request in requests:
        assert request.priority in PRIORITIES
        budget = (
            profile.batch_deadline_ms
            if request.priority == "batch"
            else profile.deadline_ms
        )
        if budget > 0:
            assert request.deadline_ms == request.arrival_ms + budget
        else:
            assert request.deadline_ms is None


@settings(max_examples=40, deadline=None)
@given(profile=open_profiles)
def test_open_loop_class_fractions_are_exact_extremes(profile):
    requests = open_loop_requests(POOL, profile)
    if profile.batch_fraction == 0.0:
        assert all(r.priority == "interactive" for r in requests)
    elif profile.batch_fraction == 1.0:
        assert all(r.priority == "batch" for r in requests)


@settings(max_examples=40, deadline=None)
@given(profile=closed_profiles, data=st.data())
def test_closed_loop_same_seed_same_stream(profile, data):
    """Replaying the same arrival sequence replays the exact stream."""
    arrivals = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e4),
            min_size=profile.n_requests,
            max_size=profile.n_requests,
        ),
        label="arrivals",
    )
    traffic = ClosedLoopTraffic(POOL, profile)
    first = [traffic.next_request(arrival) for arrival in arrivals]
    traffic.reset()
    second = [traffic.next_request(arrival) for arrival in arrivals]
    assert first == second
    for arrival, request in zip(arrivals, first):
        assert request is not None
        assert request.arrival_ms == arrival
        assert request.priority in PRIORITIES
        budget = (
            profile.batch_deadline_ms
            if request.priority == "batch"
            else profile.deadline_ms
        )
        if budget > 0:
            assert request.deadline_ms == arrival + budget
        else:
            assert request.deadline_ms is None
    assert traffic.next_request(0.0) is None  # budget spent: retired


@settings(max_examples=40, deadline=None)
@given(profile=closed_profiles)
def test_closed_loop_think_times_reproduce(profile):
    traffic = ClosedLoopTraffic(POOL, profile)
    first = [traffic.think(user) for user in range(profile.concurrency)]
    traffic.reset()
    second = [traffic.think(user) for user in range(profile.concurrency)]
    assert first == second
    assert all(pause >= 0.0 for pause in first)
    if profile.think_ms == 0.0:
        assert set(first) == {0.0}


def test_priority_rank_orders_interactive_first():
    assert PRIORITY_RANK["interactive"] < PRIORITY_RANK["batch"]
    assert tuple(sorted(PRIORITY_RANK, key=PRIORITY_RANK.get)) == PRIORITIES


def test_overload_knobs_default_off_reproduces_plain_stream():
    """batch_fraction=0 makes no class draw: old streams are bit-stable."""
    plain = TrafficProfile(name="plain", n_requests=64, rate_qps=80.0, seed=3)
    requests = open_loop_requests(POOL, plain)
    assert all(r.priority == "interactive" for r in requests)
    assert all(r.deadline_ms is None for r in requests)
    # The (text, arrival) stream must not depend on the new fields'
    # existence: re-deriving with explicit zero knobs changes nothing.
    explicit = TrafficProfile(
        name="plain", n_requests=64, rate_qps=80.0, seed=3,
        deadline_ms=0.0, batch_fraction=0.0, batch_deadline_ms=0.0,
    )
    assert open_loop_requests(POOL, explicit) == requests


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(batch_fraction=-0.1),
        dict(batch_fraction=1.5),
        dict(deadline_ms=-1.0),
        dict(batch_deadline_ms=-5.0),
        dict(rate_qps=-1.0),
        dict(repeat_rate=1.0),
        dict(n_requests=0),
    ],
)
def test_open_loop_parameter_bounds(kwargs):
    profile = TrafficProfile(name="bad", **kwargs)
    with pytest.raises(ConfigError):
        open_loop_requests(POOL, profile)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(concurrency=0),
        dict(think_ms=-1.0),
        dict(batch_fraction=2.0),
        dict(deadline_ms=-0.5),
    ],
)
def test_closed_loop_parameter_bounds(kwargs):
    profile = TrafficProfile(name="bad", mode="closed", **kwargs)
    with pytest.raises(ConfigError):
        ClosedLoopTraffic(POOL, profile)


def test_timed_request_defaults_are_backward_compatible():
    request = TimedRequest(text="#sum(t0001)", arrival_ms=2.0)
    assert request.priority == "interactive"
    assert request.deadline_ms is None
    assert request.seq == 0
