"""Unit tests for query-set generation."""

import pytest

from repro.errors import ConfigError, QueryError
from repro.inquery import parse_query, query_terms
from repro.synth import (
    CollectionProfile,
    QueryProfile,
    SyntheticCollection,
    generate_query_set,
    relevance_from_postings,
    term_rank,
)


@pytest.fixture(scope="module")
def collection():
    return SyntheticCollection(
        CollectionProfile(
            name="qtest", models="test", documents=300, mean_doc_length=80,
            doc_length_sigma=0.4, vocab_size=4000, seed=11,
        )
    )


def make(collection, **kwargs):
    defaults = dict(name="qs", style="natural", n_queries=30, seed=3)
    defaults.update(kwargs)
    return generate_query_set(collection, QueryProfile(**defaults))


def test_right_number_of_queries(collection):
    qs = make(collection)
    assert len(qs) == 30
    assert len(qs.term_ranks) == 30


def test_all_queries_parse(collection):
    for style in ("natural", "boolean", "phrase", "weighted"):
        qs = make(collection, style=style, name=style)
        for query in qs.queries:
            tree = parse_query(query)  # must not raise
            assert list(query_terms(tree))


def test_deterministic(collection):
    a = make(collection)
    b = make(collection)
    assert a.queries == b.queries


def test_unknown_style_rejected(collection):
    with pytest.raises(ConfigError):
        make(collection, style="telepathic")


def test_bad_parameters_rejected(collection):
    with pytest.raises(ConfigError):
        make(collection, n_queries=0)
    with pytest.raises(ConfigError):
        make(collection, reuse_rate=1.0)


def test_terms_exist_in_collection(collection):
    counts = collection.term_counts()
    qs = make(collection)
    for ranks in qs.term_ranks:
        for rank in ranks:
            assert counts[rank] >= 3  # the min_ctf floor


def test_reuse_produces_repeats(collection):
    reusing = make(collection, reuse_rate=0.8, name="hot", n_queries=40)
    cold = make(collection, reuse_rate=0.0, name="cold", n_queries=40, seed=4)
    def distinct_fraction(qs):
        all_ranks = [r for ranks in qs.term_ranks for r in ranks]
        return len(set(all_ranks)) / len(all_ranks)
    assert distinct_fraction(reusing) < distinct_fraction(cold)


def test_bias_prefers_frequent_terms(collection):
    counts = collection.term_counts()
    hot = make(collection, bias_alpha=1.6, name="hot")
    mild = make(collection, bias_alpha=0.2, name="mild", seed=9)
    def mean_ctf(qs):
        ranks = [r for ranks in qs.term_ranks for r in ranks]
        return sum(counts[r] for r in ranks) / len(ranks)
    assert mean_ctf(hot) > mean_ctf(mild)


def test_phrase_style_includes_real_bigram(collection):
    qs = make(collection, style="phrase", name="ph")
    found = 0
    for query in qs.queries:
        if "#phrase(" in query:
            found += 1
    assert found == len(qs)


def test_relevance_from_postings():
    term_ranks = [[1, 2], [3]]
    postings = {1: [10, 11], 2: [11, 12], 3: [20]}
    relevance = relevance_from_postings(term_ranks, lambda r: postings.get(r, ()))
    assert relevance[0] == {10, 11, 12}  # threshold 1 of 2 terms
    assert relevance[1] == {20}


def test_relevance_threshold_majority():
    term_ranks = [[1, 2, 3]]
    postings = {1: [10, 11], 2: [11], 3: [11, 12]}
    relevance = relevance_from_postings(term_ranks, lambda r: postings.get(r, ()))
    # threshold = 2 of 3 distinct terms
    assert relevance[0] == {11}


def test_relevance_empty_when_no_match():
    relevance = relevance_from_postings([[5]], lambda r: ())
    assert relevance == {}


def test_relevance_cap():
    term_ranks = [[1]]
    postings = {1: list(range(200))}
    relevance = relevance_from_postings(term_ranks, lambda r: postings[r], max_relevant=25)
    assert len(relevance[0]) == 25
