"""Shard splitting: refinement math, byte-identity, atomic cutover.

A split is only allowed to be *boring*: the refined partitioner must
send every document to a child of its current shard, the streamed child
platters must be byte-for-byte what a stop-the-world rebuild at the new
shard count would produce, and rankings before and after must both be
the single-disk reference.  The epoch bump is what makes the cutover
atomic for observers — stale schedulers refuse to run rather than mix
topologies.
"""

import pytest

from repro.core import materialize
from repro.errors import ConfigError, RebalanceInProgressError
from repro.faults.plan import FaultPlan
from repro.shard import (
    make_partitioner,
    materialize_sharded,
    measure_sharded_run,
    split_shards,
)


# -- partitioner refinement ------------------------------------------------

@pytest.mark.parametrize("scheme", ["hash", "range"])
@pytest.mark.parametrize("factor", [2, 3])
def test_refinement_preserves_parents(prepared, scheme, factor):
    old = make_partitioner(scheme, 2, n_docs=len(prepared.doctable.lengths))
    new = old.refine(factor)
    assert new.n_shards == 2 * factor
    for doc_id in prepared.doctable.lengths:
        child = new.shard_of(doc_id)
        assert old.parent_of(child, factor) == old.shard_of(doc_id)


@pytest.mark.parametrize("scheme", ["hash", "range"])
def test_children_of_partitions_the_child_space(prepared, scheme):
    old = make_partitioner(scheme, 2, n_docs=len(prepared.doctable.lengths))
    seen = sorted(
        child for parent in range(2) for child in old.children_of(parent, 2)
    )
    assert seen == [0, 1, 2, 3]


def test_refine_rejects_trivial_factor(prepared):
    part = make_partitioner("hash", 2, n_docs=len(prepared.doctable.lengths))
    with pytest.raises(ConfigError):
        part.refine(1)
    with pytest.raises(ConfigError):
        part.parent_of(5, 2)  # child id out of range


# -- the split itself ------------------------------------------------------

@pytest.mark.parametrize("scheme", ["hash", "range"])
def test_split_platters_match_fresh_build(prepared, config, scheme):
    sharded = materialize_sharded(
        prepared, config, n_shards=2, partitioner=scheme
    )
    report = split_shards(sharded, factor=2)
    assert (report.old_shards, report.new_shards) == (2, 4)
    assert sharded.n_shards == 4
    fresh = materialize_sharded(
        prepared, config, n_shards=4, partitioner=scheme
    )
    for shard_id in range(4):
        assert (
            sharded.replica(shard_id, 0).fs.disk._blocks
            == fresh.shards[shard_id].fs.disk._blocks
        ), f"child {shard_id} diverged from the stop-the-world build"


def test_split_rankings_stay_reference_identical(
    prepared, config, query_sets, reference_rankings
):
    query_set = query_sets[0]
    sharded = materialize_sharded(prepared, config, n_shards=2)
    before = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name
    )
    assert [r.ranking for r in before.results] == (
        reference_rankings[query_set.name]
    )
    split_shards(sharded, factor=2)
    after = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name
    )
    assert [r.ranking for r in after.results] == (
        reference_rankings[query_set.name]
    )


def test_split_preserves_replication(prepared, config):
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=1)
    report = split_shards(sharded, factor=2)
    assert report.replicas == 1
    assert report.mirrors_verified == 4  # one mirror per child, verified
    assert sharded.replicas == 1
    for group in sharded.replica_groups:
        assert group[0].fs.disk._blocks == group[1].fs.disk._blocks


def test_split_streams_from_a_survivor(prepared, config):
    """Primary of shard 0 dead: the stream reads replica 1 instead."""
    from repro.core.metrics import cold_start

    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=1)
    sharded.fault_shard(0, FaultPlan.dead_disk(label="s0/r0"), replica_id=0)
    # Purge build-warm buffers so the dead disk is actually read: a warm
    # machine could stream its whole platter from RAM, dead disk or not.
    cold_start(sharded.replica(0, 0))
    report = split_shards(sharded, factor=2)
    assert report.source_replicas[0] == 1
    assert report.source_replicas[1] == 0
    fresh = materialize_sharded(prepared, config, n_shards=4)
    for shard_id in range(4):
        assert (
            sharded.replica(shard_id, 0).fs.disk._blocks
            == fresh.shards[shard_id].fs.disk._blocks
        )


def test_split_charges_the_source_clock(prepared, config):
    sharded = materialize_sharded(prepared, config, n_shards=2)
    before = [shard.clock.time.wall_ms for shard in sharded.shards]
    old_shards = list(sharded.shards)
    report = split_shards(sharded, factor=2)
    for shard_id, old in enumerate(old_shards):
        charged = old.clock.time.wall_ms - before[shard_id]
        assert charged > 0.0
        assert report.stream_ms[shard_id] == pytest.approx(charged)


# -- atomicity and the epoch -----------------------------------------------

def test_cutover_bumps_epoch_and_stales_schedulers(
    prepared, config, query_sets
):
    sharded = materialize_sharded(prepared, config, n_shards=2)
    stale = sharded.scheduler()
    assert sharded.epoch == 0
    split_shards(sharded, factor=2)
    assert sharded.epoch == 1
    with pytest.raises(RebalanceInProgressError):
        stale.run_wave(query_sets[0].queries[:2])
    with pytest.raises(RebalanceInProgressError):
        stale.run_batch(query_sets[0].queries[:2])
    # A fresh scheduler against the new topology serves fine.
    fresh = sharded.scheduler()
    outcome = fresh.run_wave(query_sets[0].queries[:2])
    assert len(outcome.results) == 2


def test_split_resets_health_state(prepared, config):
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=1)
    sharded.mark_down(1, replica_id=0)
    split_shards(sharded, factor=2)
    assert sharded.replicas_down == ()
    assert sharded.shards_down == ()
    assert sharded.live_shards == [0, 1, 2, 3]


def test_failed_split_leaves_old_topology(prepared, config):
    sharded = materialize_sharded(prepared, config, n_shards=2)
    old_part = sharded.partitioner
    old_groups = sharded.replica_groups
    with pytest.raises(ConfigError):
        split_shards(sharded, factor=1)
    assert sharded.partitioner is old_part
    assert sharded.replica_groups is old_groups
    assert sharded.epoch == 0
    # And the guard was released: a valid split still works afterwards.
    split_shards(sharded, factor=2)
    assert sharded.n_shards == 4


def test_concurrent_split_is_refused(prepared, config):
    sharded = materialize_sharded(prepared, config, n_shards=2)
    sharded.begin_rebalance()
    with pytest.raises(RebalanceInProgressError):
        split_shards(sharded, factor=2)
    sharded.abort_rebalance()


def test_rereplicate_refused_during_rebalance(prepared, config):
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=1)
    sharded.begin_rebalance()
    with pytest.raises(RebalanceInProgressError):
        sharded.rereplicate(0, 1)
    sharded.abort_rebalance()
