"""Tie-breaking is one total order everywhere.

Every ranking surface in the system — the term-at-a-time engine, the
document-at-a-time engine, the vectorized fast-path selection, and the
sharded merge — orders by ``(-belief, doc id)``.  Hypothesis drives
score tables with deliberately heavy belief collisions through all four
and demands the identical ranked list, because a single surface breaking
ties differently is exactly the kind of bug the bit-identity gates exist
to catch.
"""

import heapq

import pytest
from hypothesis import given, settings, strategies as st

from repro.fastpath.state import HAVE_NUMPY
from repro.shard import ShardOutcome, merge_results
from repro.inquery import QueryResult

# Few distinct belief values over many documents: collisions guaranteed.
BELIEFS = st.sampled_from([0.4, 0.4, 0.55, 0.55, 0.55, 0.7, 0.9])
SCORE_TABLES = st.dictionaries(
    keys=st.integers(min_value=1, max_value=300),
    values=BELIEFS,
    min_size=1,
    max_size=120,
)


def reference_order(scores, k):
    """The documented contract, written as the full sort."""
    return sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:k]


@given(scores=SCORE_TABLES, k=st.integers(min_value=1, max_value=60))
@settings(max_examples=200, deadline=None)
def test_heap_selection_matches_total_order(scores, k):
    picked = heapq.nsmallest(k, scores.items(), key=lambda i: (-i[1], i[0]))
    assert picked == reference_order(scores, k)


@pytest.mark.skipif(not HAVE_NUMPY, reason="fast path needs numpy")
@given(scores=SCORE_TABLES, k=st.integers(min_value=1, max_value=60))
@settings(max_examples=200, deadline=None)
def test_fastpath_selection_matches_total_order(scores, k):
    import numpy as np

    from repro.fastpath.beliefs import ArrayBeliefs
    from repro.fastpath.topk import rank_arrays

    doc_ids = np.array(sorted(scores), dtype=np.int64)
    beliefs = np.array([scores[d] for d in sorted(scores)], dtype=np.float64)
    assert rank_arrays(ArrayBeliefs(doc_ids, beliefs), k) == (
        reference_order(scores, k)
    )


@given(
    scores=SCORE_TABLES,
    k=st.integers(min_value=1, max_value=60),
    n_shards=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=200, deadline=None)
def test_sharded_merge_matches_total_order(scores, k, n_shards):
    """Partition any score table, rank per shard, merge: same list."""
    per_shard = [{} for _ in range(n_shards)]
    for doc_id, belief in scores.items():
        per_shard[doc_id % n_shards][doc_id] = belief
    outcomes = [
        ShardOutcome(
            shard_id,
            QueryResult(query="q", ranking=reference_order(local, k)),
        )
        for shard_id, local in enumerate(per_shard)
    ]
    merged = merge_results("q", outcomes, top_k=k)
    assert merged.ranking == reference_order(scores, k)


def test_engines_break_real_ties_identically(baseline, config, prepared):
    """End-to-end: a flat query on the real index, all engines agree.

    Synthetic collections contain many same-length documents with the
    same term frequency for a common term, so single-term queries
    produce genuine belief ties in the score table.
    """
    from repro.core.metrics import cold_start
    from repro.inquery import RetrievalEngine
    from repro.inquery.daat import DocumentAtATimeEngine
    from repro.shard import materialize_sharded, measure_sharded_run
    from repro.synth.vocab import term_string

    # the collection's most common stored term: maximal tie pressure
    term = term_string(min(prepared.term_id_of_rank))
    query = f"#sum( {term} )"

    cold_start(baseline)
    taat = RetrievalEngine(baseline.index, use_fastpath=False).run_query(query)
    cold_start(baseline)
    daat = DocumentAtATimeEngine(baseline.index, use_fastpath=False).run_query(query)
    assert taat.ranking == daat.ranking
    if HAVE_NUMPY:
        cold_start(baseline)
        fast = RetrievalEngine(baseline.index, use_fastpath=True).run_query(query)
        assert fast.ranking == taat.ranking

    sharded = materialize_sharded(prepared, config, n_shards=3)
    metrics = measure_sharded_run(sharded, [query])
    assert metrics.results[0].ranking == taat.ranking
    # ties exist and are broken by doc id within equal beliefs
    beliefs = [b for _d, b in taat.ranking]
    assert len(set(beliefs)) < len(beliefs), "expected belief ties in top-k"
    for (d1, b1), (d2, b2) in zip(taat.ranking, taat.ranking[1:]):
        assert b1 > b2 or (b1 == b2 and d1 < d2)
