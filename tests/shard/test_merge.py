"""Merge semantics, degradation propagation, and dead-shard serving."""

import pytest

from repro.errors import ShardUnavailableError
from repro.faults.plan import FaultPlan
from repro.inquery import QueryResult
from repro.shard import (
    ShardOutcome,
    materialize_sharded,
    measure_sharded_run,
    merge_results,
)


def _result(ranking, attempted=0, failed=0):
    return QueryResult(
        query="q", ranking=ranking, terms_looked_up=attempted - failed,
        degraded=failed > 0, terms_attempted=attempted, terms_failed=failed,
    )


def test_merge_selects_global_top_k_with_doc_id_tiebreak():
    merged = merge_results(
        "q",
        [
            ShardOutcome(0, _result([(3, 0.9), (1, 0.5)], attempted=2)),
            ShardOutcome(1, _result([(2, 0.9), (4, 0.5)], attempted=2)),
        ],
        top_k=3,
    )
    # equal beliefs order by ascending doc id, across shards
    assert merged.ranking == [(2, 0.9), (3, 0.9), (1, 0.5)]
    assert merged.terms_attempted == 4
    assert not merged.degraded
    assert merged.completeness == 1.0
    assert merged.shard_contributions == {0: 2, 1: 1}


def test_merge_propagates_shard_degradation():
    merged = merge_results(
        "q",
        [
            ShardOutcome(0, _result([(1, 0.8)], attempted=3, failed=1)),
            ShardOutcome(1, _result([(2, 0.7)], attempted=3)),
        ],
    )
    assert merged.degraded
    assert merged.terms_failed == 1
    assert merged.terms_attempted == 6
    assert merged.completeness == pytest.approx(5 / 6)


def test_merge_accounts_down_shard_as_failed_evidence():
    merged = merge_results(
        "q",
        [
            ShardOutcome(0, _result([(1, 0.8)], attempted=2)),
            ShardOutcome(1, result=None, attempted_down=2),
        ],
    )
    assert merged.degraded
    assert merged.shards_down == (1,)
    assert merged.terms_attempted == 4
    assert merged.terms_failed == 2
    assert merged.completeness == pytest.approx(0.5)


def test_marked_down_shard_degrades_queries(prepared, config, query_sets):
    sharded = materialize_sharded(prepared, config, n_shards=3)
    sharded.mark_down(2)
    assert sharded.shards_down == (2,)
    query_set = query_sets[0]
    metrics = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name
    )
    assert metrics.degraded_queries == len(query_set.queries)
    assert all(r.shards_down == (2,) for r in metrics.results)
    assert all(r.completeness < 1.0 for r in metrics.results)
    # revived shard serves again, back to full evidence
    sharded.mark_up(2)
    healthy = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name
    )
    assert healthy.degraded_queries == 0


def test_dead_disk_shard_degrades_never_raises(prepared, config, query_sets):
    sharded = materialize_sharded(prepared, config, n_shards=3)
    sharded.fault_shard(0, FaultPlan.dead_disk())
    query_set = query_sets[0]
    metrics = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name
    )
    assert metrics.degraded_queries == len(query_set.queries)
    assert all(r.terms_failed > 0 for r in metrics.results)
    assert all(r.completeness < 1.0 for r in metrics.results)


def test_dead_disk_serving_is_deterministic(prepared, config, query_sets):
    query_set = query_sets[1]

    def run():
        sharded = materialize_sharded(prepared, config, n_shards=3)
        sharded.fault_shard(0, FaultPlan.dead_disk())
        metrics = measure_sharded_run(
            sharded, query_set.queries, query_set_name=query_set.name
        )
        return [(r.ranking, r.terms_failed) for r in metrics.results]

    assert run() == run()


def test_all_shards_down_is_an_explicit_error(prepared, config, query_sets):
    sharded = materialize_sharded(prepared, config, n_shards=2)
    sharded.mark_down(0)
    sharded.mark_down(1)
    with pytest.raises(ShardUnavailableError):
        measure_sharded_run(sharded, query_sets[0].queries[:1])


def test_shard_unavailable_error_carries_shard_id():
    error = ShardUnavailableError(3, reason="maintenance")
    assert error.shard_id == 3
    assert "maintenance" in str(error)
