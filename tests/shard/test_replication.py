"""Replication: byte-identical mirrors, deterministic failover, healing.

The contract under test is the strongest the repo makes: with ``R``
mirrors per shard, killing any single replica changes *nothing
observable* — every ranking stays bit-identical to the single-disk
reference, no query degrades, and the failover itself is recorded in a
deterministic trace.  Losing *every* replica of a shard falls back to
the established degraded path (serve partial evidence, never raise),
and :meth:`ShardedIRSystem.rereplicate` rebuilds a lost mirror
byte-identical to its survivor while the group keeps serving.
"""

import pytest

from repro.core import materialize
from repro.errors import ConfigError, ReplicaFailedError, ShardUnavailableError
from repro.faults.plan import FaultPlan
from repro.shard import materialize_sharded, measure_sharded_run


def _rankings(metrics):
    return [r.ranking for r in metrics.results]


# -- building mirrors ------------------------------------------------------

def test_mirrors_are_byte_identical_at_build(prepared, config):
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=2)
    assert sharded.n_shards == 2
    assert sharded.replicas == 2
    for group in sharded.replica_groups:
        reference = group[0].fs.disk._blocks
        for mirror in group[1:]:
            assert mirror.fs.disk._blocks == reference


def test_replicas_require_sharding(prepared, config):
    with pytest.raises(ConfigError):
        materialize(prepared, config, replicas=1)


def test_unreplicated_build_is_unchanged(prepared, config):
    sharded = materialize_sharded(prepared, config, n_shards=3)
    assert sharded.replicas == 0
    assert [len(group) for group in sharded.replica_groups] == [1, 1, 1]
    assert sharded.healthy_replicas(0) == [0]


def test_replica_health_ledger(prepared, config):
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=1)
    sharded.mark_down(1, replica_id=0)
    assert sharded.healthy_replicas(1) == [1]
    assert sharded.replicas_down == ((1, 0),)
    assert sharded.replica_health()[1] == {"healthy": [1], "failed": [0]}
    assert sharded.live_shards == [0, 1]  # a survivor keeps the shard live
    sharded.mark_up(1, replica_id=0)
    assert sharded.healthy_replicas(1) == [0, 1]


# -- failover: the identity contract ---------------------------------------

@pytest.mark.parametrize("victim", [(0, 0), (1, 0), (1, 1)])
def test_single_replica_kill_is_invisible(
    prepared, config, query_sets, reference_rankings, victim
):
    """Any one dead replica: completeness 1.0, rankings bit-identical."""
    shard_id, replica_id = victim
    query_set = query_sets[0]
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=1)
    sharded.fault_shard(
        shard_id,
        FaultPlan.dead_disk(label=f"s{shard_id}/r{replica_id}"),
        replica_id=replica_id,
    )
    metrics = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name
    )
    assert metrics.degraded_queries == 0
    assert all(r.completeness == 1.0 for r in metrics.results)
    assert _rankings(metrics) == reference_rankings[query_set.name]
    if replica_id == 0:
        # Primary died: the scheduler must have failed over and said so.
        assert (shard_id, 0) in metrics.replicas_down
        assert any(
            event["shard"] == shard_id and event["failed_replica"] == 0
            for event in metrics.failovers
        )
        assert all(round[shard_id] == 1 for round in metrics.served_by)
    else:
        # A dead mirror under primary routing is never even touched.
        assert metrics.failovers == []
        assert all(round[shard_id] == 0 for round in metrics.served_by)


def test_daat_failover_is_invisible(prepared, config, query_sets, baseline):
    from repro.bench.wallclock import _daat_queries
    from repro.core.metrics import cold_start
    from repro.inquery.daat import DocumentAtATimeEngine

    flat = _daat_queries(query_sets[0].queries)
    assert flat
    cold_start(baseline)
    engine = DocumentAtATimeEngine(
        baseline.index, top_k=50, use_fastpath=config.use_fastpath
    )
    reference = [r.ranking for r in engine.run_batch(flat)]
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=1)
    sharded.fault_shard(0, FaultPlan.dead_disk(label="s0/r0"), replica_id=0)
    metrics = measure_sharded_run(sharded, flat, engine="daat")
    assert metrics.degraded_queries == 0
    assert _rankings(metrics) == reference
    assert (0, 0) in metrics.replicas_down


def test_failover_trace_is_deterministic(prepared, config, query_sets):
    """Same build, same kill, twice: byte-identical traces and ledgers."""
    query_set = query_sets[1]

    def run():
        sharded = materialize_sharded(
            prepared, config, n_shards=2, replicas=1
        )
        sharded.fault_shard(0, FaultPlan.dead_disk(label="s0/r0"))
        metrics = measure_sharded_run(
            sharded, query_set.queries, query_set_name=query_set.name
        )
        return (
            _rankings(metrics),
            metrics.failovers,
            metrics.served_by,
            sorted(metrics.replica_busy_ms.items()),
        )

    assert run() == run()


def test_spread_policy_keeps_rankings_identical(
    prepared, config, query_sets, reference_rankings
):
    query_set = query_sets[0]
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=2)
    spread = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name,
        replica_policy="spread", policy_seed=7,
    )
    assert _rankings(spread) == reference_rankings[query_set.name]
    assert spread.degraded_queries == 0
    # The routing is a pure function of (seed, round, shard).
    again = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name,
        replica_policy="spread", policy_seed=7,
    )
    assert again.served_by == spread.served_by
    # And it actually spreads: some round lands off the primary.
    assert any(
        replica != 0 for round in spread.served_by
        for replica in round.values()
    )


def test_unknown_replica_policy_rejected(prepared, config):
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=1)
    with pytest.raises(ConfigError):
        sharded.scheduler(replica_policy="nearest")


# -- composition with the degraded path (satellite: double kill) -----------

def test_double_kill_falls_back_to_degraded_path(
    prepared, config, query_sets
):
    """Both replicas of one shard dead: PR 3/4 semantics, deterministic."""
    query_set = query_sets[0]

    def run(replicated):
        sharded = materialize_sharded(
            prepared, config, n_shards=2, replicas=1 if replicated else 0
        )
        sharded.fault_shard(0, FaultPlan.dead_disk(label="s0/r0"), replica_id=0)
        if replicated:
            sharded.fault_shard(
                0, FaultPlan.dead_disk(label="s0/r1"), replica_id=1
            )
        metrics = measure_sharded_run(
            sharded, query_set.queries, query_set_name=query_set.name
        )
        return metrics

    metrics = run(replicated=True)
    # Served, not raised — and degraded exactly like the unreplicated
    # dead-disk path, because the last survivor always keeps serving.
    assert metrics.degraded_queries == len(query_set.queries)
    assert all(r.completeness < 1.0 for r in metrics.results)
    baseline = run(replicated=False)
    assert _rankings(metrics) == _rankings(baseline)
    assert [r.terms_failed for r in metrics.results] == [
        r.terms_failed for r in baseline.results
    ]
    # Determinism of the composed failure:
    repeat = run(replicated=True)
    assert _rankings(repeat) == _rankings(metrics)
    assert repeat.failovers == metrics.failovers


def test_last_replica_is_never_marked_down(prepared, config, query_sets):
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=1)
    sharded.fault_shard(0, FaultPlan.dead_disk(), replica_id=0)
    sharded.fault_shard(0, FaultPlan.dead_disk(), replica_id=1)
    measure_sharded_run(sharded, query_sets[0].queries[:2])
    # The first replica was marked down on failover; the survivor must
    # not be, or the shard would leave the live set and change results.
    assert sharded.replicas_down == ((0, 0),)
    assert sharded.live_shards == [0, 1]


# -- re-replication --------------------------------------------------------

def test_rereplicate_rebuilds_byte_identical_mirror(
    prepared, config, query_sets, reference_rankings
):
    query_set = query_sets[0]
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=1)
    sharded.fault_shard(0, FaultPlan.dead_disk(label="s0/r0"))
    measure_sharded_run(sharded, query_set.queries[:2])
    assert sharded.replicas_down == ((0, 0),)

    report = sharded.rereplicate(0, 0)
    assert report["verified"] is True
    assert report["source_replica"] == 1
    assert report["blocks_scanned"] > 0
    assert report["source_scan_ms"] > 0.0  # the survivor paid for the copy
    assert sharded.replicas_down == ()
    assert (
        sharded.replica(0, 0).fs.disk._blocks
        == sharded.replica(0, 1).fs.disk._blocks
    )
    # The healed group serves full-fidelity results again, from the
    # replacement primary (no failovers, nothing degraded).
    metrics = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name
    )
    assert metrics.degraded_queries == 0
    assert metrics.failovers == []
    assert _rankings(metrics) == reference_rankings[query_set.name]
    assert all(round[0] == 0 for round in metrics.served_by)


def test_rereplicate_needs_a_healthy_source(prepared, config):
    sharded = materialize_sharded(prepared, config, n_shards=2, replicas=0)
    with pytest.raises(ReplicaFailedError):
        sharded.rereplicate(0, 0)  # no other replica to copy from


# -- error taxonomy (satellite: replica-carrying errors) -------------------

def test_shard_unavailable_error_carries_replica_id():
    error = ShardUnavailableError(2, reason="fenced", replica_id=1)
    assert error.shard_id == 2
    assert error.replica_id == 1
    assert "replica 1" in str(error)
    bare = ShardUnavailableError(2, reason="fenced")
    assert bare.replica_id is None
    assert "replica" not in str(bare)


def test_replica_failed_error_is_a_shard_unavailable():
    error = ReplicaFailedError(1, 2, reason="platter diverged")
    assert isinstance(error, ShardUnavailableError)
    assert (error.shard_id, error.replica_id) == (1, 2)
    assert "platter diverged" in str(error)
