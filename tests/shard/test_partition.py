"""Partitioner and per-shard preparation invariants.

The load-bearing properties: the shards disjointly cover the document
set, summing shard-local statistics reconstructs the global statistics
exactly, and the N=1 degenerate partition is byte-for-byte the
unsharded build.
"""

import pytest

from repro.core import materialize
from repro.errors import ConfigError
from repro.shard import (
    HashPartitioner,
    RangePartitioner,
    make_partitioner,
    materialize_sharded,
    partition_prepared,
)


@pytest.mark.parametrize("scheme", ["hash", "range"])
@pytest.mark.parametrize("n_shards", [1, 2, 3, 4])
def test_shards_disjointly_cover_documents(prepared, scheme, n_shards):
    partitioner = make_partitioner(scheme, n_shards, len(prepared.doctable))
    shards = partition_prepared(prepared, partitioner)
    assert len(shards) == n_shards
    seen = set()
    for shard in shards:
        docs = set(shard.doc_ids)
        assert len(docs) == len(shard.doc_ids)
        assert not (docs & seen), "a document landed on two shards"
        seen |= docs
        # the shard's local doctable describes exactly its documents
        assert set(shard.doctable.lengths) == docs
        for doc_id in docs:
            assert partitioner.shard_of(doc_id) == shard.shard_id
    assert seen == set(prepared.doctable.lengths)


@pytest.mark.parametrize("scheme", ["hash", "range"])
def test_global_statistics_reconstruct_from_shards(prepared, scheme):
    shards = partition_prepared(
        prepared, make_partitioner(scheme, 3, len(prepared.doctable))
    )
    df = {}
    ctf = {}
    postings = 0
    documents = 0
    for shard in shards:
        for term_id, value in shard.df.items():
            df[term_id] = df.get(term_id, 0) + value
        for term_id, value in shard.ctf.items():
            ctf[term_id] = ctf.get(term_id, 0) + value
        postings += shard.stats.postings
        documents += shard.stats.documents
    assert df == prepared.df
    assert ctf == prepared.ctf
    assert postings == prepared.stats.postings
    assert documents == prepared.stats.documents
    # document lengths re-assemble too (disjoint cover with same values)
    lengths = {}
    for shard in shards:
        lengths.update(shard.doctable.lengths)
    assert lengths == prepared.doctable.lengths


def test_single_shard_records_are_the_global_records(prepared):
    [shard] = partition_prepared(
        prepared, make_partitioner("hash", 1, len(prepared.doctable))
    )
    assert shard.records == prepared.records  # same bytes, same order


def test_single_shard_platter_is_byte_identical(prepared, config, baseline):
    sharded = materialize_sharded(prepared, config, n_shards=1)
    disk = sharded.shards[0].fs.disk
    assert disk._blocks == baseline.fs.disk._blocks


def test_serving_view_carries_global_statistics(prepared):
    shards = partition_prepared(
        prepared, make_partitioner("hash", 2, len(prepared.doctable))
    )
    for shard in shards:
        view = shard.serving_view(prepared)
        # global document table: collection-wide doc count and lengths
        assert view.doctable is prepared.doctable
        for term_id in shard.df:
            assert view.df[term_id] == prepared.df[term_id]
            assert view.ctf[term_id] == prepared.ctf[term_id]
        # but local storage statistics: Table 2 buffers size per shard
        assert view.stats is shard.stats


def test_partitioners_are_deterministic_and_in_range():
    hash_partitioner = HashPartitioner(4)
    range_partitioner = RangePartitioner(4, 100)
    for doc_id in range(1, 101):
        assert 0 <= hash_partitioner.shard_of(doc_id) < 4
        assert hash_partitioner.shard_of(doc_id) == HashPartitioner(4).shard_of(doc_id)
        assert 0 <= range_partitioner.shard_of(doc_id) < 4
    # range shards are contiguous and balanced to within one document
    homes = [range_partitioner.shard_of(d) for d in range(1, 101)]
    assert homes == sorted(homes)
    counts = [homes.count(i) for i in range(4)]
    assert max(counts) - min(counts) <= 1


def test_partitioner_argument_validation():
    with pytest.raises(ConfigError):
        HashPartitioner(0)
    with pytest.raises(ConfigError):
        RangePartitioner(2, 0)
    with pytest.raises(ConfigError):
        make_partitioner("modulo", 2, 100)
    with pytest.raises(ConfigError):
        RangePartitioner(2, 100).shard_of(0)


def test_mismatched_partitioner_is_rejected(prepared, config):
    with pytest.raises(ConfigError):
        materialize_sharded(
            prepared, config, n_shards=3, partitioner=HashPartitioner(2)
        )


def test_materialize_delegates_to_sharded(prepared, config):
    sharded = materialize(prepared, config, shards=2, partitioner="range")
    assert sharded.n_shards == 2
    assert sharded.partitioner.scheme == "range"
    assert sharded.name == f"{config.name}x2"
