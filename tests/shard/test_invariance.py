"""Observational identity: sharded rankings == single-disk rankings.

The whole point of the global-statistics exchange and the lossless
merge: for every query shape the paper's query sets use (natural,
boolean operator trees, phrases, weighted sums), at every shard count,
with either partitioner, the merged ranking must be *bit-identical* —
same documents, same belief floats, same order — to the unsharded
engine's.
"""

import pytest

from repro.bench.wallclock import _daat_queries
from repro.core.metrics import cold_start
from repro.inquery.daat import DocumentAtATimeEngine
from repro.shard import materialize_sharded, measure_sharded_run


@pytest.mark.parametrize("scheme", ["hash", "range"])
@pytest.mark.parametrize("n_shards", [1, 2, 3, 4])
def test_taat_rankings_bit_identical(
    prepared, config, query_sets, reference_rankings, scheme, n_shards
):
    sharded = materialize_sharded(
        prepared, config, n_shards=n_shards, partitioner=scheme
    )
    for query_set in query_sets:
        metrics = measure_sharded_run(
            sharded, query_set.queries, query_set_name=query_set.name
        )
        assert [r.ranking for r in metrics.results] == (
            reference_rankings[query_set.name]
        ), f"{scheme}/N={n_shards}: {query_set.name} diverged"


@pytest.mark.parametrize("n_shards", [2, 4])
def test_daat_rankings_bit_identical(
    baseline, prepared, config, query_sets, n_shards
):
    sharded = materialize_sharded(prepared, config, n_shards=n_shards)
    for query_set in query_sets:
        flat = _daat_queries(query_set.queries)
        if not flat:
            continue
        cold_start(baseline)
        engine = DocumentAtATimeEngine(
            baseline.index, top_k=50, use_fastpath=config.use_fastpath
        )
        reference = [r.ranking for r in engine.run_batch(flat)]
        metrics = measure_sharded_run(
            sharded, flat, query_set_name=query_set.name, engine="daat"
        )
        assert [r.ranking for r in metrics.results] == reference


def test_rankings_stable_across_repeated_runs(prepared, config, query_sets):
    """Thread scheduling must never leak into results or accounting."""
    sharded = materialize_sharded(prepared, config, n_shards=3)
    query_set = query_sets[1]  # boolean: the deepest trees
    first = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name
    )
    second = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name
    )
    assert [r.ranking for r in first.results] == [
        r.ranking for r in second.results
    ]
    assert first.wall_s == second.wall_s
    assert first.wall_s_sum == second.wall_s_sum


def test_more_workers_than_shards_changes_nothing(
    prepared, config, query_sets, reference_rankings
):
    sharded = materialize_sharded(prepared, config, n_shards=2)
    query_set = query_sets[0]
    metrics = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name,
        max_workers=8,
    )
    assert [r.ranking for r in metrics.results] == (
        reference_rankings[query_set.name]
    )
