"""Scheduler accounting: critical path, resource bill, queue depth."""

import pytest

from repro.core.metrics import measure_run
from repro.shard import materialize_sharded, measure_sharded_run


@pytest.fixture(scope="module")
def sharded4(prepared, config):
    return materialize_sharded(prepared, config, n_shards=4)


def test_critical_path_bounded_by_sum(sharded4, query_sets):
    query_set = query_sets[0]
    metrics = measure_sharded_run(
        sharded4, query_set.queries, query_set_name=query_set.name
    )
    # the critical path is real time on some machine: it cannot beat the
    # slowest shard alone, nor exceed all machine-time laid end to end
    slowest = max(m.wall_s for m in metrics.per_shard)
    assert metrics.wall_s >= slowest
    assert metrics.wall_s >= metrics.coordinator_wall_s
    assert metrics.wall_s <= metrics.wall_s_sum + 1e-9
    assert metrics.wall_s_sum == pytest.approx(
        sum(m.wall_s for m in metrics.per_shard) + metrics.coordinator_wall_s
    )
    assert 0.0 < metrics.parallel_efficiency <= 1.0


def test_physical_work_is_summed_across_shards(sharded4, query_sets):
    query_set = query_sets[0]
    metrics = measure_sharded_run(
        sharded4, query_set.queries, query_set_name=query_set.name
    )
    assert metrics.io_inputs == sum(m.io_inputs for m in metrics.per_shard)
    assert metrics.bytes_from_file == sum(
        m.bytes_from_file for m in metrics.per_shard
    )
    assert metrics.record_lookups == sum(
        m.record_lookups for m in metrics.per_shard
    )
    for pool, stats in metrics.buffer_stats.items():
        assert stats.refs == sum(
            m.buffer_stats[pool].refs
            for m in metrics.per_shard
            if pool in m.buffer_stats
        )


def test_scheduler_ledger_shape(sharded4, query_sets):
    query_set = query_sets[0]
    n_queries = len(query_set.queries)
    metrics = measure_sharded_run(
        sharded4, query_set.queries, query_set_name=query_set.name
    )
    # TAAT runs two waves (collect, score) over four shards per query
    assert metrics.barriers == 2 * n_queries
    assert metrics.tasks == 2 * 4 * n_queries
    assert 1 <= metrics.max_queue_depth <= 4
    assert metrics.shard_skew >= 1.0
    assert len(metrics.per_shard) == 4
    assert metrics.shards_down == ()


def test_sharded_io_close_to_unsharded(baseline, sharded4, query_sets):
    """Partitioning must not inflate physical record reads.

    Record lookups can only go *down* per shard (a shard skips terms it
    stores no postings for); the summed count is bounded by the
    unsharded engine's and every attempted term is still accounted.
    """
    query_set = query_sets[0]
    unsharded = measure_run(
        baseline, query_set.queries, query_set_name=query_set.name
    )
    sharded = measure_sharded_run(
        sharded4, query_set.queries, query_set_name=query_set.name
    )
    assert sharded.record_lookups <= 4 * unsharded.record_lookups
    assert sharded.degraded_queries == 0


def test_down_shard_excluded_from_ledger(prepared, config, query_sets):
    sharded = materialize_sharded(prepared, config, n_shards=3)
    sharded.mark_down(1)
    query_set = query_sets[0]
    metrics = measure_sharded_run(
        sharded, query_set.queries, query_set_name=query_set.name
    )
    assert len(metrics.per_shard) == 2
    assert metrics.shards_down == (1,)
    assert metrics.tasks == 2 * 2 * len(query_set.queries)
