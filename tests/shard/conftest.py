"""Fixtures: one small collection, its single-disk reference rankings.

Everything expensive is session-scoped: the collection, its
preparation, the query sets (one per query style so the invariance
tests cover the whole operator surface), and the unsharded baseline's
rankings.  Sharded builds are cheap by comparison and constructed per
test so fault plans and down-marks never leak between tests.
"""

import pytest

from repro.core import config_by_name, materialize, prepare_collection
from repro.core.metrics import measure_run
from repro.synth import (
    CollectionProfile,
    QueryProfile,
    SyntheticCollection,
    generate_query_set,
)

TINY = CollectionProfile(
    name="tiny-shards", models="test", documents=280, mean_doc_length=60,
    doc_length_sigma=0.5, vocab_size=3000, seed=41,
)

QUERY_STYLES = [
    QueryProfile(name="shards-natural", style="natural", n_queries=8,
                 mean_terms=4, seed=101),
    QueryProfile(name="shards-boolean", style="boolean", n_queries=8,
                 mean_terms=4, seed=103),
    QueryProfile(name="shards-phrase", style="phrase", n_queries=8,
                 mean_terms=3, seed=107),
    QueryProfile(name="shards-weighted", style="weighted", n_queries=8,
                 mean_terms=4, seed=109),
]


@pytest.fixture(scope="session")
def collection():
    return SyntheticCollection(TINY)


@pytest.fixture(scope="session")
def prepared(collection):
    return prepare_collection(collection)


@pytest.fixture(scope="session")
def query_sets(collection):
    return [generate_query_set(collection, profile) for profile in QUERY_STYLES]


@pytest.fixture(scope="session")
def config():
    return config_by_name("mneme-cache")


@pytest.fixture(scope="session")
def baseline(prepared, config):
    return materialize(prepared, config)


@pytest.fixture(scope="session")
def reference_rankings(baseline, query_sets):
    """Single-disk TAAT rankings per query set: the identity target."""
    reference = {}
    for query_set in query_sets:
        metrics = measure_run(
            baseline, query_set.queries, query_set_name=query_set.name
        )
        reference[query_set.name] = [r.ranking for r in metrics.results]
    return reference
