"""Unit tests for benchmark report rendering and figure builders."""

import pytest

from repro.bench import render_plot, render_table
from repro.bench.figures import figure1_size_distribution, figure2_term_use
from repro.core import prepare_collection
from repro.synth import (
    CollectionProfile,
    QueryProfile,
    SyntheticCollection,
    generate_query_set,
)


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            "My Table", ("Name", "Value"), [("alpha", 1), ("b", 22.5)]
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")
        assert "Name" in lines[3] and "Value" in lines[3]
        assert "alpha" in text and "22.50" in text

    def test_note_appended(self):
        text = render_table("T", ("A",), [(1,)], note="a footnote")
        assert text.rstrip().endswith("a footnote")

    def test_empty_rows(self):
        text = render_table("T", ("A", "B"), [])
        assert "A" in text and "B" in text

    def test_float_formatting(self):
        text = render_table("T", ("A",), [(1234567.0,), (float("nan"),)])
        assert "1,234,567" in text
        assert "-" in text


class TestRenderPlot:
    def test_basic_plot(self):
        text = render_plot(
            "Curve", [1, 10, 100], {"s": [0.1, 0.5, 0.9]},
            x_label="x", y_label="y", log_x=True,
        )
        assert "Curve" in text
        assert "* = s" in text
        assert "[log scale]" in text

    def test_multiple_series_get_distinct_marks(self):
        text = render_plot(
            "Two", [0, 1], {"a": [0, 1], "b": [1, 0]},
        )
        assert "* = a" in text
        assert "+ = b" in text

    def test_empty_data(self):
        text = render_plot("Empty", [], {})
        assert "no data" in text

    def test_flat_series_does_not_crash(self):
        text = render_plot("Flat", [1, 2, 3], {"s": [5.0, 5.0, 5.0]})
        assert "Flat" in text


@pytest.fixture(scope="module")
def tiny_prepared_and_queries():
    collection = SyntheticCollection(CollectionProfile(
        name="bench-test", models="t", documents=200, mean_doc_length=80,
        doc_length_sigma=0.4, vocab_size=3000, seed=66,
    ))
    prepared = prepare_collection(collection)
    queries = generate_query_set(collection, QueryProfile(
        name="qs", style="natural", n_queries=10, seed=67,
    ))
    return prepared, queries


class TestFigureBuilders:
    def test_figure1_series_properties(self, tiny_prepared_and_queries):
        prepared, _queries = tiny_prepared_and_queries
        xs, series = figure1_size_distribution(prepared, points=20)
        assert len(xs) == 20
        assert series["% of Records"][-1] == 100.0
        assert series["% of File Size"][-1] == 100.0
        assert xs == sorted(xs)

    def test_figure2_points(self, tiny_prepared_and_queries):
        prepared, queries = tiny_prepared_and_queries
        points = figure2_term_use(prepared, queries)
        assert points
        assert points == sorted(points)
        total_uses = sum(u for _s, u in points)
        total_terms = sum(len(r) for r in queries.term_ranks)
        assert total_uses == total_terms
