"""Tests for benchmark runner caching."""

import pytest

from repro.bench import BenchRunner


@pytest.fixture(scope="module")
def runner():
    return BenchRunner()


def test_workload_cached_across_calls(runner):
    first = runner.workload("cacm-s")
    second = runner.workload("cacm-s")
    assert first is second


def test_systems_cached(runner):
    first = runner.systems("cacm-s")
    second = runner.systems("cacm-s")
    assert first is second
    assert set(first) == {"btree", "mneme-nocache", "mneme-cache"}


def test_grid_cached_and_complete(runner):
    grid = runner.grid("cacm-s")
    assert grid is runner.grid("cacm-s")
    assert set(grid.cells) == {"cacm-1", "cacm-2", "cacm-3"}
    for cells in grid.cells.values():
        assert set(cells) == {"btree", "mneme-nocache", "mneme-cache"}
        for metrics in cells.values():
            assert metrics.queries == 50


def test_display_names_cover_profiles():
    from repro.bench import DISPLAY_NAMES, PROFILE_ORDER

    assert set(DISPLAY_NAMES) == set(PROFILE_ORDER)
