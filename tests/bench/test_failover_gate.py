"""The failover gate's verdict machinery, without running the bench.

The four-collection replication benchmark itself is tier-2
(``scripts/bench.sh failover``); here we pin down the checking logic —
the exact-equality ``--check`` comparator, the baseline error handling
and exit codes, and the report printer — against fabricated reports,
mirroring the saturate-gate self-tests.
"""

import json

import repro.bench.failover as failover_bench
from repro.bench.failover import _print_report, compare_reports


def make_cell(ok=True, failovers=2, post_split_miss=True):
    return {
        "config": "mneme-cache",
        "queries": 8,
        "daat_queries": 4,
        "r0_control": {"degraded_queries": 8, "deterministic": True},
        "kill_matrix": {
            "N2xR1": {"victims": 4, "clean": 4, "failovers": failovers},
            "N2xR2": {"victims": 6, "clean": 6, "failovers": failovers},
            "N4xR1": {"victims": 8, "clean": 8, "failovers": 2 * failovers},
            "N4xR2": {"victims": 12, "clean": 12, "failovers": 2 * failovers},
        },
        "daat_failover_clean": True,
        "rereplication": {
            "blocks_scanned": 31,
            "source_replica": 1,
            "byte_identical": True,
            "post_heal_failovers": 0,
        },
        "deterministic": True,
        "split": {
            "records_streamed": 11386,
            "postings_moved": 40000,
            "mirrors_verified": 4,
            "epoch": 1,
            "platters_match_fresh": True,
            "cache_invalidations": 1,
            "post_split_miss": post_split_miss,
            "rows_identical": True,
        },
        "violations": [] if ok else ["N=2 R=1: killing shard 0 was observable"],
        "ok": ok,
    }


def make_report(ok=True, **cell_kwargs):
    return {
        "benchmark": "failover",
        "config": "mneme-cache",
        "profiles": {"cacm-s": make_cell(ok=ok, **cell_kwargs)},
        "ok": ok,
    }


# -- the --check comparator -----------------------------------------------

def test_compare_identical_reports_pass():
    assert compare_reports(make_report(), make_report()) == []


def test_compare_rejects_any_cell_drift():
    baseline = make_report(failovers=2)
    current = make_report(failovers=3)
    failures = compare_reports(current, baseline)
    assert len(failures) == 1
    assert "kill_matrix drifted" in failures[0]


def test_compare_rejects_split_drift():
    baseline = make_report()
    current = make_report(post_split_miss=False)
    failures = compare_reports(current, baseline)
    assert any("split drifted" in failure for failure in failures)


def test_compare_fails_on_missing_profile():
    baseline = make_report()
    empty = {"benchmark": "failover", "profiles": {}, "ok": True}
    assert compare_reports(empty, baseline) == [
        "cacm-s: missing from the current run"
    ]


def test_compare_surfaces_current_violations():
    failures = compare_reports(make_report(ok=False), make_report())
    assert any("observable" in failure for failure in failures)


# -- printer --------------------------------------------------------------

def test_print_report_smoke(capsys):
    _print_report(make_report())
    out = capsys.readouterr().out
    assert "cacm-s" in out
    assert "N2xR1" in out and "N4xR2" in out
    assert "re-replication" in out
    assert "split 2->4" in out
    assert "trace deterministic: True" in out

    _print_report(make_report(ok=False))
    assert "VIOLATION" in capsys.readouterr().out


# -- exit codes -----------------------------------------------------------

def _patch_run(monkeypatch, report):
    def fake_run(profiles, config_name, n_queries, out_path=None):
        if out_path is not None:
            out_path.write_text(json.dumps(report) + "\n")
        return report

    monkeypatch.setattr(failover_bench, "run_benchmark", fake_run)


def test_main_exit_codes_without_check(tmp_path, monkeypatch):
    out = tmp_path / "BENCH_failover.json"
    _patch_run(monkeypatch, make_report(ok=True))
    assert failover_bench.main(["--out", str(out)]) == 0
    assert json.loads(out.read_text())["ok"] is True

    _patch_run(monkeypatch, make_report(ok=False))
    assert failover_bench.main(["--out", str(out)]) == 1


def test_check_passes_and_fails_against_baseline(tmp_path, monkeypatch):
    baseline_path = tmp_path / "BENCH_failover.json"
    baseline_path.write_text(json.dumps(make_report()) + "\n")

    _patch_run(monkeypatch, make_report())
    assert failover_bench.main(
        ["--check", "--baseline", str(baseline_path)]
    ) == 0

    _patch_run(monkeypatch, make_report(failovers=5))
    assert failover_bench.main(
        ["--check", "--baseline", str(baseline_path)]
    ) == 1


def test_check_restricted_profiles_gate_only_that_subset(
    tmp_path, monkeypatch
):
    # The nightly job checks two of the four baseline collections; the
    # untested profiles must not count as "missing from the current run".
    baseline = make_report()
    baseline["profiles"]["legal-s"] = make_cell()
    baseline_path = tmp_path / "BENCH_failover.json"
    baseline_path.write_text(json.dumps(baseline) + "\n")

    _patch_run(monkeypatch, make_report())
    assert failover_bench.main(
        ["--profile", "cacm-s", "--check", "--baseline", str(baseline_path)]
    ) == 0


def test_check_profile_absent_from_baseline_is_operator_error(
    tmp_path, monkeypatch, capsys
):
    baseline_path = tmp_path / "BENCH_failover.json"
    baseline_path.write_text(json.dumps(make_report()) + "\n")

    _patch_run(monkeypatch, make_report())
    assert failover_bench.main(
        ["--profile", "legal-s", "--check", "--baseline", str(baseline_path)]
    ) == 2
    assert "lacks profile" in capsys.readouterr().out


def test_check_missing_baseline_is_operator_error(tmp_path, monkeypatch, capsys):
    _patch_run(monkeypatch, make_report())
    missing = tmp_path / "nope.json"
    assert failover_bench.main(["--check", "--baseline", str(missing)]) == 2
    out = capsys.readouterr().out
    assert "no baseline" in out
    assert "\n" not in out.strip()  # a one-line diagnosis, not a traceback


def test_check_unparsable_baseline_is_operator_error(
    tmp_path, monkeypatch, capsys
):
    _patch_run(monkeypatch, make_report())
    mangled = tmp_path / "BENCH_failover.json"
    mangled.write_text("{not json")
    assert failover_bench.main(["--check", "--baseline", str(mangled)]) == 2
    assert "not valid JSON" in capsys.readouterr().out

    mangled.write_text(json.dumps({"benchmark": "failover"}))
    assert failover_bench.main(["--check", "--baseline", str(mangled)]) == 2
    assert "not a failover report" in capsys.readouterr().out
