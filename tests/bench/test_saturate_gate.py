"""The saturation gate's verdict machinery, without running the bench.

The four-collection overload benchmark itself is tier-2
(``scripts/bench.sh saturate``); here we pin down the checking logic —
the ``--check`` comparator (exact shed-fraction drift, banded p99), the
baseline error handling and exit codes, and the report printer —
against fabricated reports, mirroring the serve-gate self-tests.
"""

import json
from types import SimpleNamespace

import repro.bench.saturate as saturate_bench
from repro.bench.saturate import (
    _check_invariance,
    _print_report,
    compare_reports,
)


def served_row(text, ranking, outcome="miss"):
    return SimpleNamespace(
        text=text, outcome=outcome, result=SimpleNamespace(ranking=ranking)
    )


def worker_cell(p99=800.0, shed_fraction=0.25, goodput=40.0):
    return {
        "name": "w2",
        "offered": 120,
        "admitted": 90,
        "shed_queue_full": 25,
        "shed_deadline": 5,
        "shed_fraction": shed_fraction,
        "goodput_qps": goodput,
        "makespan_ms": 2250.0,
        "waves": 12,
        "workers": 2,
        "queue_limit": 32,
        "latency": {"count": 90, "mean_ms": 300.0, "p50_ms": 250.0,
                    "p95_ms": 700.0, "p99_ms": p99, "max_ms": p99},
        "per_class": {},
    }


def make_report(ok=True, p99=800.0, shed_fraction=0.25):
    cell = {
        "config": "mneme-cache",
        "shards": 2,
        "max_batch": 8,
        "queue_limit": 32,
        "mean_service_ms": 40.0,
        "max_service_ms": 90.0,
        "traffic": {"n_requests": 120, "rate_qps": 600.0, "repeat_rate": 0.0,
                    "deadline_ms": 320.0, "batch_fraction": 0.3,
                    "batch_deadline_ms": 640.0, "seed": 41},
        "p99_bound_ms": {"1": 2000.0, "2": 1500.0, "4": 1200.0},
        "workers": {
            "1": worker_cell(p99=1.5 * p99, shed_fraction=0.4, goodput=20.0),
            "2": worker_cell(p99=p99, shed_fraction=shed_fraction),
            "4": worker_cell(p99=0.7 * p99, shed_fraction=0.1, goodput=80.0),
        },
        "deterministic": True,
        "shard_skew": 1.02,
        "uncontrolled": {"p99_ms": 5.0 * p99, "max_ms": 6.0 * p99,
                         "throughput_qps": 30.0},
        "violations": [] if ok else ["w2: shed fraction is zero"],
        "ok": ok,
    }
    return {
        "benchmark": "saturate",
        "config": "mneme-cache",
        "profiles": {"cacm-s": cell},
        "ok": ok,
    }


# -- invariance comparator ------------------------------------------------

def test_invariance_passes_on_identical_rankings():
    reference = {"q1": [(1, 0.5)], "q2": [(2, 0.4)]}
    report = SimpleNamespace(served=[
        served_row("q1", [(1, 0.5)]),
        served_row("q2", [(2, 0.4)]),
    ])
    violations = []
    assert _check_invariance(report, reference, "w2", violations) == 0
    assert violations == []


def test_invariance_catches_any_divergence():
    reference = {"q1": [(1, 0.5)]}
    report = SimpleNamespace(served=[served_row("q1", [(1, 0.5000001)])])
    violations = []
    assert _check_invariance(report, reference, "w2", violations) == 1
    assert "w2" in violations[0] and "'q1'" in violations[0]


def test_invariance_summarizes_mass_failures():
    reference = {"q": [(1, 0.5)]}
    report = SimpleNamespace(
        served=[served_row("q", [(1, 0.6)]) for _ in range(10)]
    )
    violations = []
    assert _check_invariance(report, reference, "w1", violations) == 10
    assert len(violations) == 4
    assert "10 admitted rankings diverged" in violations[-1]


# -- the --check comparator -----------------------------------------------

def test_compare_identical_reports_pass():
    baseline = make_report(ok=True)
    assert compare_reports(make_report(ok=True), baseline) == []


def test_compare_rejects_any_shed_fraction_drift():
    baseline = make_report(ok=True, shed_fraction=0.25)
    current = make_report(ok=True, shed_fraction=0.2501)
    failures = compare_reports(current, baseline)
    assert len(failures) == 1
    assert "shed fraction drifted" in failures[0]
    assert "cacm-s/w2" in failures[0]


def test_compare_bands_p99_regressions():
    baseline = make_report(ok=True, p99=800.0)
    within = make_report(ok=True, p99=850.0)     # +6.25% < 10% band
    assert compare_reports(within, baseline) == []
    beyond = make_report(ok=True, p99=900.0)     # +12.5% > 10% band
    failures = compare_reports(beyond, baseline)
    assert any("p99" in failure for failure in failures)
    improved = make_report(ok=True, p99=500.0)   # improvements always pass
    assert compare_reports(improved, baseline) == []


def test_compare_fails_on_missing_profile_or_worker_point():
    baseline = make_report(ok=True)
    empty = {"benchmark": "saturate", "profiles": {}, "ok": True}
    failures = compare_reports(empty, baseline)
    assert failures == ["cacm-s: missing from the current run"]

    partial = make_report(ok=True)
    del partial["profiles"]["cacm-s"]["workers"]["4"]
    failures = compare_reports(partial, baseline)
    assert any("w4" in failure and "missing" in failure for failure in failures)


def test_compare_surfaces_current_violations():
    baseline = make_report(ok=True)
    broken = make_report(ok=False)
    failures = compare_reports(broken, baseline)
    assert any("shed fraction is zero" in failure for failure in failures)


# -- printer --------------------------------------------------------------

def test_print_report_smoke(capsys):
    _print_report(make_report(ok=True))
    out = capsys.readouterr().out
    assert "cacm-s" in out
    assert "w=1" in out and "w=4" in out
    assert "uncontrolled" in out
    assert "deterministic: True" in out

    _print_report(make_report(ok=False))
    assert "VIOLATION" in capsys.readouterr().out


# -- exit codes -----------------------------------------------------------

def _patch_run(monkeypatch, report):
    def fake_run(profiles, config_name, n_requests, shards, out_path=None):
        if out_path is not None:
            out_path.write_text(json.dumps(report) + "\n")
        return report

    monkeypatch.setattr(saturate_bench, "run_benchmark", fake_run)


def test_main_exit_codes_without_check(tmp_path, monkeypatch):
    out = tmp_path / "BENCH_saturate.json"
    _patch_run(monkeypatch, make_report(ok=True))
    assert saturate_bench.main(["--out", str(out)]) == 0
    assert json.loads(out.read_text())["ok"] is True

    _patch_run(monkeypatch, make_report(ok=False))
    assert saturate_bench.main(["--out", str(out)]) == 1


def test_check_passes_and_fails_against_baseline(tmp_path, monkeypatch):
    baseline_path = tmp_path / "BENCH_saturate.json"
    baseline_path.write_text(json.dumps(make_report(ok=True)) + "\n")

    _patch_run(monkeypatch, make_report(ok=True))
    assert saturate_bench.main(
        ["--check", "--baseline", str(baseline_path)]
    ) == 0

    _patch_run(monkeypatch, make_report(ok=True, shed_fraction=0.3))
    assert saturate_bench.main(
        ["--check", "--baseline", str(baseline_path)]
    ) == 1


def test_check_missing_baseline_is_operator_error(tmp_path, monkeypatch, capsys):
    _patch_run(monkeypatch, make_report(ok=True))
    missing = tmp_path / "nope.json"
    assert saturate_bench.main(["--check", "--baseline", str(missing)]) == 2
    out = capsys.readouterr().out
    assert "no baseline" in out
    assert "\n" not in out.strip()  # a one-line diagnosis, not a traceback


def test_check_unparsable_baseline_is_operator_error(
    tmp_path, monkeypatch, capsys
):
    _patch_run(monkeypatch, make_report(ok=True))
    mangled = tmp_path / "BENCH_saturate.json"
    mangled.write_text("{not json")
    assert saturate_bench.main(["--check", "--baseline", str(mangled)]) == 2
    assert "not valid JSON" in capsys.readouterr().out

    mangled.write_text(json.dumps({"benchmark": "saturate"}))
    assert saturate_bench.main(["--check", "--baseline", str(mangled)]) == 2
    assert "not a saturate report" in capsys.readouterr().out
