"""The ingest gate's verdict machinery, without running the bench.

The four-collection mixed read/write benchmark itself is nightly CI
(``scripts/bench.sh ingest --check``); here we pin down the checking
logic — the ``--check`` comparator (exact per-cell equality), the
baseline error handling and exit codes, and the report printer —
against fabricated reports, mirroring the failover-gate self-tests.
The single-profile end-to-end run rides along as a tier-2 test.
"""

import json

import pytest

import repro.bench.ingest as ingest_bench
from repro.bench.ingest import _print_report, _schedule, compare_reports, main


def make_cell(ok=True):
    scenario = {
        "epochs": 2,
        "docs_added": 24,
        "docs_deleted": 8,
        "ingest_wall_ms": 100.0,
        "ingest_docs_per_s": 320.0,
        "query_p50_ms": 12.5,
        "query_mean_ms": 14.0,
        "cache_invalidations": 2,
        "wal_marked": True,
        "compaction": {
            "tombstones_folded": 8,
            "records_rewritten": 40,
            "bytes_reclaimed": 8192,
            "segments_copied": 10,
            "post_compaction_hit_rate": 1.0,
        },
    }
    return {
        "config": "mneme-linked",
        "queries": 6,
        "daat_queries": 3,
        "flat": scenario,
        "sharded": dict(scenario, groups_verified_per_epoch=2),
        "deterministic": True,
        "violations": [] if ok else ["flat: compaction reclaimed nothing"],
        "ok": ok,
    }


def make_report(ok=True):
    return {
        "benchmark": "ingest",
        "config": "mneme-linked",
        "profiles": {"cacm-s": make_cell(ok)},
        "ok": ok,
    }


# -- comparator -----------------------------------------------------------

def test_identical_reports_pass():
    assert compare_reports(make_report(), make_report()) == []


def test_any_cell_drift_fails():
    current = make_report()
    current["profiles"]["cacm-s"]["flat"]["query_p50_ms"] = 13.0
    failures = compare_reports(current, make_report())
    assert len(failures) == 1 and "flat" in failures[0]


def test_violations_surface_in_check():
    failures = compare_reports(make_report(ok=False), make_report())
    assert any("reclaimed nothing" in f for f in failures)


def test_missing_profile_fails():
    current = make_report()
    current["profiles"] = {}
    failures = compare_reports(current, make_report())
    assert failures == ["cacm-s: missing from the current run"]


def test_deterministic_flag_is_gated():
    current = make_report()
    current["profiles"]["cacm-s"]["deterministic"] = False
    # The flag flip alone drifts, independent of the ok bit.
    failures = compare_reports(current, make_report())
    assert any("deterministic" in f for f in failures)


# -- schedule -------------------------------------------------------------

def test_schedule_is_a_pure_function_of_the_corpus(corpus_stub=None):
    class Stub:
        base_count = 10
        base_ids = list(range(1, 11))

    a = _schedule(Stub(), epochs=3, batch=6)
    b = _schedule(Stub(), epochs=3, batch=6)
    assert a == b
    # Adds never collide with live ids; deletes are always live.
    live = set(Stub.base_ids)
    for add_ids, delete_ids, live_ids in a:
        assert not set(add_ids) & live
        assert set(delete_ids) <= live
        live.update(add_ids)
        live.difference_update(delete_ids)
        assert sorted(live) == live_ids


# -- exit codes and operator errors ---------------------------------------

def test_check_without_baseline_is_an_operator_error(tmp_path, capsys):
    code = main(["--check", "--baseline", str(tmp_path / "missing.json")])
    assert code == 2
    assert "no baseline" in capsys.readouterr().out


def test_check_with_invalid_json_is_an_operator_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    code = main(["--check", "--baseline", str(bad)])
    assert code == 2
    assert "not valid JSON" in capsys.readouterr().out


def test_check_with_wrong_shape_is_an_operator_error(tmp_path, capsys):
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"benchmark": "ingest"}))
    code = main(["--check", "--baseline", str(wrong)])
    assert code == 2
    assert "no 'profiles' key" in capsys.readouterr().out


def test_restricted_check_requires_profile_in_baseline(tmp_path, capsys):
    baseline = tmp_path / "base.json"
    report = make_report()
    del report["profiles"]["cacm-s"]
    report["profiles"]["legal-s"] = make_cell()
    baseline.write_text(json.dumps(report))
    code = main([
        "--check", "--baseline", str(baseline), "--profile", "cacm-s",
    ])
    assert code == 2
    assert "lacks profile" in capsys.readouterr().out


def test_check_compares_and_exits_one_on_drift(tmp_path, capsys, monkeypatch):
    baseline = tmp_path / "base.json"
    drifted = make_report()
    drifted["profiles"]["cacm-s"]["flat"]["docs_added"] = 999
    baseline.write_text(json.dumps(drifted))
    monkeypatch.setattr(
        ingest_bench, "run_benchmark",
        lambda profiles, config, queries, out: make_report(),
    )
    code = main(["--check", "--baseline", str(baseline)])
    assert code == 1
    assert "INGEST GATE FAILED" in capsys.readouterr().out


def test_check_passes_on_equal_reports(tmp_path, capsys, monkeypatch):
    baseline = tmp_path / "base.json"
    baseline.write_text(json.dumps(make_report()))
    monkeypatch.setattr(
        ingest_bench, "run_benchmark",
        lambda profiles, config, queries, out: make_report(),
    )
    code = main(["--check", "--baseline", str(baseline)])
    assert code == 0
    assert "ingest gate passed" in capsys.readouterr().out


def test_printer_handles_every_cell_shape(capsys):
    _print_report(make_report(ok=False))
    out = capsys.readouterr().out
    assert "VIOLATION" in out and "compaction" in out


# -- the real thing, one profile (tier 2) ---------------------------------

@pytest.mark.tier2
def test_single_profile_gate_end_to_end(tmp_path):
    out = tmp_path / "BENCH_ingest.json"
    code = main(["--profile", "cacm-s", "--out", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    cell = report["profiles"]["cacm-s"]
    assert cell["ok"] and cell["deterministic"]
    # And --check against its own output is clean.
    assert main([
        "--profile", "cacm-s", "--check", "--baseline", str(out),
    ]) == 0
