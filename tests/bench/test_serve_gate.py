"""The serve gate's verdict machinery, without running the timed bench.

The four-collection traffic benchmark itself is tier-2
(``scripts/bench.sh serve``); here we pin down the checking logic — the
invariance comparator, the report shaping, and the CLI exit codes —
against fabricated reports, the same way the wall-clock gate is tested.
"""

import json
from types import SimpleNamespace

import repro.bench.serve as serve_bench
from repro.bench.serve import _check_invariance, _print_report


def served_row(text, ranking, outcome="miss"):
    return SimpleNamespace(
        text=text, outcome=outcome, result=SimpleNamespace(ranking=ranking)
    )


def make_report(ok=True):
    summary = {
        "count": 4, "mean_ms": 2.0, "p50_ms": 1.5, "p95_ms": 4.0,
        "p99_ms": 5.0, "max_ms": 5.0, "requests": 4, "waves": 2,
        "throughput_qps": 100.0, "hit_rate": 0.5,
        "outcomes": {"hit": 2, "miss": 2, "shared": 0},
    }
    cell = {
        "config": "mneme-cache",
        "shards": 2,
        "mean_service_ms": 1.0,
        "traffic": {"n_requests": 4, "rate_qps": 50.0,
                    "repeat_rate": 0.75, "seed": 29},
        "cache_on": dict(summary),
        "cache_off": dict(summary, p50_ms=9.0),
        "p50_speedup": 6.0,
        "daat": dict(summary),
        "burst_throughput_qps_by_workers": {"1": 10.0, "2": 19.0, "4": 35.0},
        "dead_shard": {"requests": 2, "degraded_served": 2,
                       "cache_entries": 0, "rejected_degraded": 2},
        "violations": [] if ok else ["cache: p50 speedup 1.00x is below"],
        "ok": ok,
    }
    return {
        "benchmark": "serve",
        "config": "mneme-cache",
        "min_p50_speedup": 5.0,
        "profiles": {"cacm-s": cell},
        "ok": ok,
    }


def test_invariance_passes_on_identical_rankings():
    reference = {"q1": [(1, 0.5)], "q2": [(2, 0.4)]}
    report = SimpleNamespace(served=[
        served_row("q1", [(1, 0.5)], "miss"),
        served_row("q2", [(2, 0.4)], "hit"),
        served_row("q1", [(1, 0.5)], "shared"),
    ])
    violations = []
    assert _check_invariance(report, reference, "label", violations) == 0
    assert violations == []


def test_invariance_catches_any_divergence():
    reference = {"q1": [(1, 0.5)]}
    report = SimpleNamespace(served=[
        served_row("q1", [(1, 0.5000001)], "hit"),
    ])
    violations = []
    assert _check_invariance(report, reference, "label", violations) == 1
    assert len(violations) == 1
    assert "label" in violations[0]
    assert "'q1'" in violations[0]


def test_invariance_summarizes_mass_failures():
    reference = {"q": [(1, 0.5)]}
    report = SimpleNamespace(
        served=[served_row("q", [(1, 0.6)], "miss") for _ in range(10)]
    )
    violations = []
    assert _check_invariance(report, reference, "label", violations) == 10
    # Three verbose rows plus one total line, not ten.
    assert len(violations) == 4
    assert "10 served rankings diverged" in violations[-1]


def test_print_report_smoke(capsys):
    _print_report(make_report(ok=True))
    out = capsys.readouterr().out
    assert "cacm-s" in out
    assert "p50 speedup 6.00x" in out
    assert "burst scaling" in out
    assert "dead shard" in out

    _print_report(make_report(ok=False))
    assert "VIOLATION" in capsys.readouterr().out


def test_print_report_handles_raised_dead_shard(capsys):
    report = make_report(ok=False)
    report["profiles"]["cacm-s"]["dead_shard"] = {"raised": True}
    _print_report(report)
    assert "dead shard" not in capsys.readouterr().out


def test_main_exit_codes(tmp_path, monkeypatch):
    def fake_run(profiles, config_name, n_requests, shards,
                 min_p50_speedup, out_path):
        if out_path is not None:
            out_path.write_text(json.dumps(fake_run.report) + "\n")
        return fake_run.report

    monkeypatch.setattr(serve_bench, "run_benchmark", fake_run)

    out = tmp_path / "BENCH_serve.json"
    fake_run.report = make_report(ok=True)
    assert serve_bench.main(["--out", str(out)]) == 0
    assert json.loads(out.read_text())["ok"] is True

    fake_run.report = make_report(ok=False)
    assert serve_bench.main(["--out", str(out)]) == 1
