"""The wall-clock regression gate must itself be trustworthy.

A fabricated baseline with an injected slowdown has to fail
:func:`repro.bench.wallclock.compare_reports`; an in-band wobble has to
pass.  Invariance violations and missing profiles/phases are failures
outright.  The CLI plumbing (``--check`` exit codes) is covered against
fabricated report files, without running the timed benchmark.
"""

import copy
import json

import pytest

from repro.bench.wallclock import (
    DEFAULT_MIN_BAND,
    _daat_queries,
    _phase_row,
    _spread,
    compare_reports,
)


def make_report(speedup=4.0, noise=0.05, invariant=True, identical=True):
    """A minimal two-profile report in the on-disk schema."""
    def row(s, n):
        return {
            "reference_s": round(s * 0.1, 4),
            "fastpath_s": 0.1,
            "speedup": s,
            "noise": n,
        }

    checks = {"rankings": identical, "simulated_clock": identical}
    report = {
        "benchmark": "wallclock",
        "repeats": 3,
        "profiles": {
            "cacm-s": {
                "config": "mneme-cache",
                "invariant": invariant,
                "phases": {
                    "build": row(speedup, noise),
                    "query:cacm-1": dict(row(speedup, noise), identical=dict(checks)),
                    "daat:cacm-1": dict(row(speedup, noise), identical=dict(checks)),
                },
                "end_to_end": row(speedup, noise),
            },
            "legal-s": {
                "config": "mneme-cache",
                "invariant": invariant,
                "phases": {
                    "build": row(speedup, noise),
                    "query:legal-1": dict(row(speedup, noise), identical=dict(checks)),
                },
                "end_to_end": row(speedup, noise),
            },
        },
    }
    return report


def test_identical_reports_pass():
    baseline = make_report()
    assert compare_reports(copy.deepcopy(baseline), baseline) == []


def test_in_band_wobble_passes():
    baseline = make_report(speedup=4.0, noise=0.05)
    # A drop within the minimum band (35%): 4.0x -> 3.2x.
    current = make_report(speedup=3.2, noise=0.05)
    assert compare_reports(current, baseline) == []


def test_injected_slowdown_fails():
    baseline = make_report(speedup=4.0, noise=0.05)
    # Far out of band: the fast path degraded to parity.
    current = make_report(speedup=1.0, noise=0.05)
    failures = compare_reports(current, baseline)
    assert failures
    # Every phase of every profile regressed.
    assert any("cacm-s/build" in f for f in failures)
    assert any("legal-s/query:legal-1" in f for f in failures)
    assert any("daat:cacm-1" in f for f in failures)


def test_single_phase_slowdown_is_pinpointed():
    baseline = make_report(speedup=4.0, noise=0.05)
    current = make_report(speedup=4.0, noise=0.05)
    current["profiles"]["legal-s"]["phases"]["query:legal-1"]["speedup"] = 1.5
    failures = compare_reports(current, baseline)
    assert len(failures) == 1
    assert "legal-s/query:legal-1" in failures[0]


def test_noisy_phases_widen_the_band():
    baseline = make_report(speedup=4.0, noise=0.2)
    # 4.0x -> 2.2x is outside the 35% floor but inside the noise band:
    # 3 * (0.2 + 0.2) = 1.2, floor 4.0 / 2.2 = 1.82x.
    current = make_report(speedup=2.2, noise=0.2)
    assert compare_reports(current, baseline) == []
    # The same drop with quiet timings fails.
    assert compare_reports(
        make_report(speedup=2.2, noise=0.0), make_report(speedup=4.0, noise=0.0)
    )


def test_invariance_violation_fails_regardless_of_speed():
    baseline = make_report()
    current = make_report(speedup=10.0, invariant=False)
    failures = compare_reports(current, baseline)
    assert any("diverged" in f for f in failures)


def test_non_identical_phase_fails():
    baseline = make_report()
    current = make_report()
    current["profiles"]["cacm-s"]["phases"]["daat:cacm-1"]["identical"][
        "rankings"
    ] = False
    failures = compare_reports(current, baseline)
    assert any("cacm-s/daat:cacm-1" in f and "identical" in f for f in failures)


def test_missing_profile_and_phase_fail():
    baseline = make_report()
    current = make_report()
    del current["profiles"]["legal-s"]
    del current["profiles"]["cacm-s"]["phases"]["daat:cacm-1"]
    failures = compare_reports(current, baseline)
    assert any("legal-s: missing" in f for f in failures)
    assert any("cacm-s/daat:cacm-1" in f for f in failures)


def test_faster_than_baseline_passes():
    baseline = make_report(speedup=4.0)
    assert compare_reports(make_report(speedup=9.0), baseline) == []


def test_min_band_is_a_floor_not_a_cap():
    baseline = make_report(speedup=4.0, noise=0.0)
    current = make_report(speedup=4.0 / (1.0 + DEFAULT_MIN_BAND) - 0.05, noise=0.0)
    assert compare_reports(current, baseline)


# -- statistics helpers -----------------------------------------------------


def test_spread_and_phase_row():
    assert _spread([1.0, 1.0, 1.0]) == 0.0
    assert _spread([0.9, 1.0, 1.1]) == pytest.approx(0.2)
    assert _spread([0.0]) == 0.0
    row = _phase_row([2.0, 2.2, 1.8], [1.0, 1.1, 0.9])
    assert row["reference_s"] == 2.0
    assert row["fastpath_s"] == 1.0
    assert row["speedup"] == 2.0
    assert row["noise"] == pytest.approx(0.2)


def test_daat_queries_flatten_structured_sets():
    flat = _daat_queries(["#sum( a b )", "#and( a b )"])
    assert flat == ["#sum( a b )"]  # flat subset preferred
    derived = _daat_queries(["#and( a b )", "#phrase( c d )"])
    assert derived == ["#sum( a b )", "#sum( c d )"]


# -- CLI exit codes against fabricated report files -------------------------


def test_check_cli_exit_codes(tmp_path, monkeypatch):
    import repro.bench.wallclock as wc

    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(make_report(speedup=4.0)) + "\n")

    def fake_run(profiles, config_name, out_path, repeats):
        return fake_run.report

    monkeypatch.setattr(wc, "run_benchmark", fake_run)

    fake_run.report = make_report(speedup=3.8)
    assert wc.main(["--check", "--baseline", str(baseline_path)]) == 0

    fake_run.report = make_report(speedup=1.0)
    assert wc.main(["--check", "--baseline", str(baseline_path)]) == 1

    assert wc.main(["--check", "--baseline", str(tmp_path / "absent.json")]) == 2
