"""The service contract: waves, sharing, hits, degradation, lifecycle."""

import pytest

from repro.core import materialize
from repro.core.metrics import cold_start
from repro.errors import ConfigError, ServiceUnavailableError
from repro.faults.plan import FaultPlan
from repro.inquery import RetrievalEngine
from repro.serve import QueryService, ResultCache
from repro.synth.traffic import TimedRequest


def burst(texts):
    return [TimedRequest(text=text, arrival_ms=0.0) for text in texts]


def test_serve_one_matches_cold_engine(prepared, config, pool, taat_reference):
    service = QueryService(materialize(prepared, config))
    for text in pool[:6]:
        assert service.serve_one(text).ranking == taat_reference[text]


def test_hit_is_bit_identical_to_cold_evaluation(prepared, config, pool):
    service = QueryService(materialize(prepared, config))
    text = pool[0]
    first = service.serve_one(text)
    second = service.serve_one(text)
    assert service.stats.cache_hits == 1
    assert second.ranking == first.ranking
    assert second.query == text
    # The hit must also match a *fresh* engine on a cold system, not
    # just the warmed-up first evaluation.
    system = materialize(prepared, config)
    cold_start(system)
    cold = RetrievalEngine(
        system.index, top_k=50,
        use_reservation=config.use_reservation,
        use_fastpath=config.use_fastpath,
    ).run_query(text)
    assert second.ranking == cold.ranking


def test_sharded_serving_matches_single_disk(
    prepared, config, pool, taat_reference
):
    backend = materialize(prepared, config, shards=2)
    service = QueryService(backend, workers=2, max_batch=4)
    report = service.process(burst(pool[:8]), name="sharded")
    assert len(report.served) == 8
    for row in report.served:
        assert row.result.ranking == taat_reference[row.text]


def test_daat_serving_matches_single_disk(
    prepared, config, daat_pool, daat_reference
):
    service = QueryService(materialize(prepared, config), engine="daat")
    report = service.process(burst(daat_pool), name="daat")
    for row in report.served:
        assert row.result.ranking == daat_reference[row.text]


def test_in_wave_duplicates_share_one_evaluation(prepared, config, pool):
    text = pool[0]
    service = QueryService(materialize(prepared, config), max_batch=4)
    report = service.process(burst([text, text.upper(), text, pool[1]]))
    outcomes = [row.outcome for row in report.served]
    assert outcomes == ["miss", "shared", "shared", "miss"]
    assert service.stats.evaluated == 2
    rankings = {tuple(row.result.ranking) for row in report.served[:3]}
    assert len(rankings) == 1
    # Shared rows echo their own spelling, not the owner's.
    assert report.served[1].result.query == text.upper()


def test_cache_off_disables_sharing(prepared, config, pool):
    text = pool[0]
    service = QueryService(
        materialize(prepared, config), use_cache=False, max_batch=4
    )
    report = service.process(burst([text, text, text]))
    assert [row.outcome for row in report.served] == ["miss"] * 3
    assert service.stats.evaluated == 3
    assert service.cache is None
    assert report.cache_stats is None


def test_repeat_heavy_stream_hits_after_first_wave(prepared, config, pool):
    text = pool[0]
    service = QueryService(materialize(prepared, config), max_batch=1)
    report = service.process(burst([text] * 4))
    assert [row.outcome for row in report.served] == [
        "miss", "hit", "hit", "hit"
    ]
    # Latency includes queueing (burst arrivals), so compare service
    # time: a hit pays only the normalize/probe overhead, a miss pays
    # the evaluation too.
    service_times = [
        row.completion_ms - row.start_ms for row in report.served
    ]
    assert service_times[1] < service_times[0]


def test_degraded_results_served_but_never_cached(prepared, config, pool):
    backend = materialize(prepared, config, shards=2)
    backend.fault_shard(0, FaultPlan.dead_disk())
    service = QueryService(backend, workers=2)
    report = service.process(burst(pool[:6]), name="dead")
    degraded = [
        row for row in report.served if row.result.completeness < 1.0
    ]
    assert degraded, "a dead shard must actually degrade results"
    assert len(service.cache) == 0
    assert service.cache.stats.rejected_degraded == len(report.served)
    assert service.stats.degraded_served == len(report.served)


def test_shed_requests_never_touch_the_cache(prepared, config, pool):
    # Admission hygiene: a shed request is refused before normalization,
    # so it can neither insert a result nor even register a lookup —
    # cache state and stats are exactly what the admitted request left.
    service = QueryService(
        materialize(prepared, config), max_batch=1, queue_limit=1
    )
    report = service.process(burst(pool[:5]), name="shed-hygiene")
    assert len(report.shed) == 4
    assert len(service.cache) == 1        # only the admitted request's entry
    assert service.cache.stats.lookups == 1
    assert service.cache.stats.insertions == 1
    shed_keys = {service.key_of(row.text) for row in report.shed}
    resident = shed_keys - {service.key_of(report.served[0].text)}
    for key in resident:
        assert key not in service.cache  # __contains__ does not count


def test_deadline_expired_requests_never_touch_the_cache(prepared, config, pool):
    service = QueryService(materialize(prepared, config), max_batch=1)
    requests = [
        TimedRequest(text=pool[0], arrival_ms=0.0, seq=0),
        TimedRequest(text=pool[1], arrival_ms=0.0, deadline_ms=0.001, seq=1),
        TimedRequest(text=pool[2], arrival_ms=0.0, deadline_ms=0.001, seq=2),
    ]
    report = service.process(requests, name="expiry-hygiene")
    assert len(report.shed) == 2
    assert all(row.reason == "deadline" for row in report.shed)
    assert len(service.cache) == 1
    assert service.cache.stats.lookups == 1
    assert service.cache.stats.insertions == 1
    # A later identical query is a genuine miss: nothing was pre-warmed
    # on the expired requests' behalf.
    service.serve_one(pool[1])
    assert service.stats.cache_hits == 0


def test_close_makes_service_unavailable(prepared, config, pool):
    service = QueryService(materialize(prepared, config))
    service.serve_one(pool[0])
    service.close()
    with pytest.raises(ServiceUnavailableError):
        service.serve_one(pool[0])
    with pytest.raises(ServiceUnavailableError):
        service.process(burst(pool[:2]))


def test_invalidate_cache_forces_reevaluation(prepared, config, pool):
    service = QueryService(materialize(prepared, config))
    text = pool[0]
    service.serve_one(text)
    assert service.invalidate_cache("index rebuilt") == 1
    service.serve_one(text)
    assert service.stats.cache_hits == 0
    assert service.stats.evaluated == 2
    assert service.cache.epoch == 1


def test_shared_cache_across_services(prepared, config, pool):
    shared = ResultCache(capacity=16)
    first = QueryService(materialize(prepared, config), cache=shared)
    first.serve_one(pool[0])
    second = QueryService(materialize(prepared, config), cache=shared)
    second.serve_one(pool[0])
    assert shared.stats.hits == 1


def test_wave_admission_respects_arrivals(prepared, config, pool):
    service = QueryService(materialize(prepared, config), max_batch=8)
    late = 10_000_000.0  # far past any plausible first-wave completion
    requests = [
        TimedRequest(text=pool[0], arrival_ms=0.0),
        TimedRequest(text=pool[1], arrival_ms=0.0),
        TimedRequest(text=pool[2], arrival_ms=late),
    ]
    report = service.process(requests)
    assert report.waves == 2
    assert report.served[2].start_ms >= late


def test_config_validation():
    with pytest.raises(ConfigError):
        QueryService.__new__(QueryService).__init__(object(), engine="bogus")


def test_key_of_agrees_across_spellings(prepared, config, pool):
    service = QueryService(materialize(prepared, config))
    text = pool[0]
    assert service.key_of(text) == service.key_of(text.upper())
    assert service.key_of(text) != service.key_of(pool[1])


# -- live rebalancing (shard split under the service) ----------------------

def test_rebalance_invalidates_cache_epoch(prepared, config, pool):
    """A pre-split cache entry must never be served post-split: the
    cutover bumps the cache epoch, so the first post-split occurrence of
    a previously cached query is a genuine miss (with the same bits)."""
    service = QueryService(materialize(prepared, config, shards=2), workers=2)
    text = pool[0]
    before = service.serve_one(text)
    assert service.serve_one(text).ranking == before.ranking
    assert service.stats.cache_hits == 1
    epoch_before = service.cache.epoch

    report = service.rebalance(factor=2)
    assert report.new_shards == 4
    assert service.backend.n_shards == 4
    assert service.cache.epoch == epoch_before + 1
    assert service.stats.rebalances == 1
    assert len(service.cache) == 0

    after = service.serve_one(text)
    assert after.ranking == before.ranking
    # Re-evaluated, not served from the stale epoch.
    assert service.stats.cache_hits == 1
    assert service.stats.evaluated == 2


def test_rebalance_mid_stream_is_invisible(
    prepared, config, pool, taat_reference
):
    """Half the pool on N=2, split live, the rest on N=4: every served
    result still bit-identical to the cold single-disk reference."""
    service = QueryService(
        materialize(prepared, config, shards=2, replicas=1), workers=2
    )
    half = len(pool) // 2
    first = service.process(burst(pool[:half]), name="pre-split")
    service.rebalance(factor=2)
    second = service.process(burst(pool[half:]), name="post-split")
    for report in (first, second):
        for row in report.served:
            assert row.result.ranking == taat_reference[row.text], row.text
    assert service.stats.rebalances == 1
    assert service.stats.degraded_served == 0


def test_rebalance_requires_sharded_backend(prepared, config):
    service = QueryService(materialize(prepared, config))
    with pytest.raises(ConfigError):
        service.rebalance()


def test_service_absorbs_replica_failover(prepared, config, pool, taat_reference):
    """A dead primary behind the service: zero degraded results, the
    failover surfaced in ServiceStats, rankings still reference-equal."""
    backend = materialize(prepared, config, shards=2, replicas=1)
    backend.fault_shard(0, FaultPlan.dead_disk(label="s0/r0"), replica_id=0)
    service = QueryService(backend, workers=2)
    report = service.process(burst(pool[:6]), name="failover")
    assert service.stats.degraded_served == 0
    assert service.stats.failovers >= 1
    assert any(
        replica == 1 for (shard, replica) in service.stats.replica_busy_ms
    )
    for row in report.served:
        assert row.result.ranking == taat_reference[row.text]
