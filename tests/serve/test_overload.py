"""Admission control: bounded queue, deadlines, priorities, accounting.

Overload is a first-class state of the service: every request the
admission machinery refuses shows up in the shed ledger with a reason
and an error type — the conservation law ``offered = admitted + shed``
holds everywhere, nothing is silently dropped, and the whole shed set
is a pure function of the request trace.
"""

import pytest

from repro.core import materialize
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    RequestSheddedError,
    ServiceUnavailableError,
)
from repro.serve import QueryService, ServiceMetrics
from repro.synth.traffic import ClosedLoopTraffic, TimedRequest, TrafficProfile


def burst(texts, **kwargs):
    return [
        TimedRequest(text=text, arrival_ms=0.0, seq=seq, **kwargs)
        for seq, text in enumerate(texts)
    ]


def test_queue_limit_sheds_at_arrival(prepared, config, pool):
    service = QueryService(
        materialize(prepared, config), max_batch=1, queue_limit=1
    )
    report = service.process(burst(pool[:4]), name="queue-full")
    assert len(report.served) == 1
    assert report.served[0].text == pool[0]
    assert len(report.shed) == 3
    assert all(row.reason == "queue-full" for row in report.shed)
    assert all(row.error == "RequestSheddedError" for row in report.shed)
    assert all(row.shed_ms == 0.0 for row in report.shed)  # verdict at arrival
    assert report.offered == 4
    assert service.stats.admitted == 1
    assert service.stats.shed_queue_full == 3
    assert report.summary()["shed"]["queue_full"] == 3


def test_unbounded_queue_never_sheds(prepared, config, pool):
    service = QueryService(materialize(prepared, config), queue_limit=0)
    report = service.process(burst(pool[:6]))
    assert report.shed == []
    assert len(report.served) == 6
    assert "shed" not in report.summary()  # legacy schema when nothing shed


def test_deadline_expires_at_wave_formation(prepared, config, pool):
    service = QueryService(materialize(prepared, config), max_batch=1)
    requests = [
        TimedRequest(text=pool[0], arrival_ms=0.0, seq=0),
        TimedRequest(text=pool[1], arrival_ms=0.0, deadline_ms=0.001, seq=1),
    ]
    report = service.process(requests, name="expiry")
    assert [row.text for row in report.served] == [pool[0]]
    assert len(report.shed) == 1
    victim = report.shed[0]
    assert victim.text == pool[1]
    assert victim.reason == "deadline"
    assert victim.error == "DeadlineExceededError"
    assert victim.shed_ms > victim.deadline_ms  # expired after its deadline
    assert service.stats.shed_deadline == 1
    error = victim.as_error()
    assert isinstance(error, DeadlineExceededError)
    assert error.query == pool[1]
    assert error.deadline_ms == victim.deadline_ms


def test_admitted_requests_start_by_their_deadline(prepared, config, pool):
    # The expiry-at-dequeue invariant: whatever is admitted to a wave
    # starts no later than its deadline — this is what bounds admitted
    # queueing delay under overload.
    requests = [
        TimedRequest(text=pool[i % len(pool)], arrival_ms=0.0,
                     deadline_ms=15.0, seq=i)
        for i in range(12)
    ]
    service = QueryService(materialize(prepared, config), max_batch=2)
    report = service.process(requests, name="bounded")
    assert report.served, "some requests must be admitted"
    for row in report.served:
        assert row.start_ms <= row.deadline_ms
    for row in report.shed:
        assert row.reason == "deadline"
    assert report.offered == 12


def test_interactive_beats_batch_at_wave_formation(prepared, config, pool):
    requests = [
        TimedRequest(text=pool[0], arrival_ms=0.0, priority="batch", seq=0),
        TimedRequest(text=pool[1], arrival_ms=0.0, seq=1),
    ]
    service = QueryService(materialize(prepared, config), max_batch=1)
    report = service.process(requests, name="priority")
    assert [row.text for row in report.served] == [pool[1], pool[0]]
    assert report.served[0].priority == "interactive"
    assert report.served[0].start_ms < report.served[1].start_ms


def test_priority_order_is_stable_within_class(prepared, config, pool):
    # Same class, same arrival: stream position (seq) breaks the tie, so
    # the schedule is a pure function of the trace.
    requests = burst([pool[2], pool[0], pool[1]])
    service = QueryService(materialize(prepared, config), max_batch=1)
    report = service.process(requests)
    assert [row.text for row in report.served] == [pool[2], pool[0], pool[1]]


def test_unknown_priority_is_a_config_error(prepared, config, pool):
    service = QueryService(materialize(prepared, config))
    with pytest.raises(ConfigError):
        service.process([
            TimedRequest(text=pool[0], arrival_ms=0.0, priority="platinum")
        ])
    with pytest.raises(ConfigError):
        service.serve_one(pool[0], priority="platinum")


def test_serve_one_raises_on_expired_deadline(prepared, config, pool):
    service = QueryService(materialize(prepared, config))
    with pytest.raises(DeadlineExceededError) as excinfo:
        service.serve_one(pool[0], deadline_ms=-1.0)
    assert excinfo.value.query == pool[0]
    assert service.stats.shed_deadline == 1
    # The taxonomy: a deadline miss IS a shed IS a service-unavailable.
    assert isinstance(excinfo.value, RequestSheddedError)
    assert isinstance(excinfo.value, ServiceUnavailableError)
    # A live deadline serves normally.
    result = service.serve_one(pool[0], deadline_ms=1e9)
    assert result.ranking


def test_queue_limit_validation(prepared, config):
    with pytest.raises(ConfigError):
        QueryService(materialize(prepared, config), queue_limit=-1)


def test_per_class_accounting(prepared, config, pool):
    requests = [
        TimedRequest(text=pool[0], arrival_ms=0.0, seq=0),
        TimedRequest(text=pool[1], arrival_ms=0.0, priority="batch", seq=1),
        TimedRequest(text=pool[2], arrival_ms=0.0, priority="batch",
                     deadline_ms=0.001, seq=2),
        TimedRequest(text=pool[3], arrival_ms=0.0, seq=3),
    ]
    service = QueryService(
        materialize(prepared, config), max_batch=1, queue_limit=3
    )
    report = service.process(requests, name="classes")
    metrics = ServiceMetrics.from_report(report)
    assert metrics.offered == 4
    assert metrics.admitted + metrics.shed_queue_full + metrics.shed_deadline == 4
    interactive = metrics.per_class["interactive"]
    batch = metrics.per_class["batch"]
    assert interactive.offered + batch.offered == 4
    # The deadlined batch request expired (interactive jumped the queue
    # ahead of it, and it could only be dequeued too late).
    assert batch.shed_deadline + batch.shed_queue_full >= 1
    assert metrics.shed_fraction == pytest.approx(
        (metrics.shed_queue_full + metrics.shed_deadline) / 4
    )
    cell = metrics.as_dict()
    assert cell["per_class"]["interactive"]["admitted"] == interactive.admitted
    assert cell["offered"] == 4


def test_closed_loop_deadlines_shed_and_conserve(prepared, config, pool):
    profile = TrafficProfile(
        name="closed-overload", mode="closed", n_requests=16,
        concurrency=6, think_ms=0.0, repeat_rate=0.0,
        deadline_ms=0.01, seed=19,
    )
    traffic = ClosedLoopTraffic(pool, profile)
    service = QueryService(materialize(prepared, config), max_batch=1)
    report = service.process_closed(traffic)
    assert report.shed, "six no-think users on a one-query wave must expire"
    assert all(row.reason == "deadline" for row in report.shed)
    # Conservation: every issued request is either served or ledgered.
    assert len(report.served) + len(report.shed) == profile.n_requests


def test_sharded_busy_accounting_surfaces_in_stats(prepared, config, pool):
    backend = materialize(prepared, config, shards=2)
    service = QueryService(backend, workers=2, max_batch=4)
    service.process(burst(pool[:8]), name="sharded")
    assert set(service.stats.shard_busy_ms) == {0, 1}
    assert all(busy > 0.0 for busy in service.stats.shard_busy_ms.values())
    assert service.stats.shard_skew >= 1.0


def test_flat_backend_has_no_shard_ledger(prepared, config, pool):
    service = QueryService(materialize(prepared, config))
    service.process(burst(pool[:4]))
    assert service.stats.shard_busy_ms == {}
    assert service.stats.shard_skew == 1.0  # empty ledger: neutral skew


def test_back_compat_no_knobs_is_plain_fifo(prepared, config, pool):
    # With no queue bound, no deadlines, and one class, the refactored
    # event loop must schedule exactly like the historical FIFO service.
    texts = [pool[i % len(pool)] for i in range(10)]
    requests = [
        TimedRequest(text=text, arrival_ms=float(i))
        for i, text in enumerate(texts)
    ]
    service = QueryService(materialize(prepared, config), max_batch=3)
    report = service.process(requests, name="fifo")
    assert [row.text for row in report.served] == texts
    assert report.shed == []
    assert report.queue_limit == 0
