"""Fixtures: one small collection, query pools, single-disk references.

The expensive pieces (collection, preparation, query pools, reference
rankings) are session-scoped; backends are materialized per test (or
memoized inside a test module) because :class:`repro.serve.QueryService`
cold-starts whatever backend it is handed.
"""

import pytest

from repro.bench.wallclock import _daat_queries
from repro.core import config_by_name, materialize, prepare_collection
from repro.core.metrics import cold_start
from repro.inquery import DocumentAtATimeEngine, RetrievalEngine
from repro.synth import (
    CollectionProfile,
    QueryProfile,
    SyntheticCollection,
    generate_query_set,
)

TINY = CollectionProfile(
    name="tiny-serve", models="test", documents=240, mean_doc_length=50,
    doc_length_sigma=0.5, vocab_size=2500, seed=43,
)

QUERY_STYLES = [
    QueryProfile(name="serve-natural", style="natural", n_queries=8,
                 mean_terms=4, seed=211),
    QueryProfile(name="serve-boolean", style="boolean", n_queries=6,
                 mean_terms=4, seed=223),
    QueryProfile(name="serve-weighted", style="weighted", n_queries=6,
                 mean_terms=4, seed=227),
]


@pytest.fixture(scope="session")
def collection():
    return SyntheticCollection(TINY)


@pytest.fixture(scope="session")
def prepared(collection):
    return prepare_collection(collection)


@pytest.fixture(scope="session")
def config():
    return config_by_name("mneme-cache")


@pytest.fixture(scope="session")
def pool(collection):
    queries = []
    for profile in QUERY_STYLES:
        queries.extend(generate_query_set(collection, profile).queries)
    return queries


@pytest.fixture(scope="session")
def daat_pool(pool):
    """The flat #sum/#wsum subset the document-at-a-time engine accepts."""
    flat = _daat_queries(pool)
    assert flat, "query pools must include flat queries for DAAT coverage"
    return flat


def reference_rankings(prepared, config, texts, engine="taat"):
    """Cold single-disk rankings, the bit-identity target for serving."""
    system = materialize(prepared, config)
    cold_start(system)
    engine_cls = DocumentAtATimeEngine if engine == "daat" else RetrievalEngine
    runner = engine_cls(
        system.index,
        top_k=50,
        use_reservation=config.use_reservation,
        use_fastpath=config.use_fastpath,
    )
    return {text: runner.run_query(text).ranking for text in dict.fromkeys(texts)}


@pytest.fixture(scope="session")
def taat_reference(prepared, config, pool):
    return reference_rankings(prepared, config, pool, engine="taat")


@pytest.fixture(scope="session")
def daat_reference(prepared, config, daat_pool):
    return reference_rankings(prepared, config, daat_pool, engine="daat")
