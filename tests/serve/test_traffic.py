"""The synthetic traffic layer: determinism, repetition, both loop shapes."""

import pytest

from repro.core import materialize
from repro.errors import ConfigError
from repro.serve import QueryService
from repro.synth import ClosedLoopTraffic, TrafficProfile, open_loop_requests

POOL = [f"#sum(t{i:04d} t{i + 1:04d})" for i in range(0, 40, 2)]


def test_open_loop_is_deterministic():
    profile = TrafficProfile(name="det", n_requests=50, rate_qps=100.0, seed=5)
    first = open_loop_requests(POOL, profile)
    second = open_loop_requests(POOL, profile)
    assert first == second


def test_open_loop_seed_changes_stream():
    base = TrafficProfile(name="a", n_requests=50, rate_qps=100.0, seed=5)
    other = TrafficProfile(name="b", n_requests=50, rate_qps=100.0, seed=6)
    assert open_loop_requests(POOL, base) != open_loop_requests(POOL, other)


def test_open_loop_arrivals_are_nondecreasing():
    profile = TrafficProfile(name="mono", n_requests=80, rate_qps=200.0)
    requests = open_loop_requests(POOL, profile)
    arrivals = [request.arrival_ms for request in requests]
    assert arrivals == sorted(arrivals)
    assert arrivals[0] > 0.0


def test_burst_mode_arrives_at_time_zero():
    profile = TrafficProfile(name="burst", n_requests=10, rate_qps=0.0)
    requests = open_loop_requests(POOL, profile)
    assert all(request.arrival_ms == 0.0 for request in requests)


def test_repeat_rate_zero_cycles_the_pool():
    profile = TrafficProfile(
        name="norepeat", n_requests=len(POOL), rate_qps=0.0, repeat_rate=0.0
    )
    requests = open_loop_requests(POOL, profile)
    assert [request.text for request in requests] == POOL


def test_repeat_rate_controls_duplication():
    # A pool wider than the stream, so every duplicate is a history
    # re-issue, not pool recycling.
    wide_pool = [f"#sum(t{i:04d})" for i in range(300)]

    def duplication(repeat_rate):
        profile = TrafficProfile(
            name="dup", n_requests=200, rate_qps=0.0,
            repeat_rate=repeat_rate, seed=11,
        )
        texts = [r.text for r in open_loop_requests(wide_pool, profile)]
        return len(texts) - len(set(texts))

    assert duplication(0.0) == 0
    assert duplication(0.3) > 20
    assert duplication(0.8) > duplication(0.3)


def test_traffic_validation():
    with pytest.raises(ConfigError):
        open_loop_requests([], TrafficProfile(name="empty"))
    with pytest.raises(ConfigError):
        open_loop_requests(POOL, TrafficProfile(name="none", n_requests=0))
    with pytest.raises(ConfigError):
        open_loop_requests(POOL, TrafficProfile(name="rr", repeat_rate=1.0))
    with pytest.raises(ConfigError):
        open_loop_requests(POOL, TrafficProfile(name="closed", mode="closed"))
    with pytest.raises(ConfigError):
        ClosedLoopTraffic(POOL, TrafficProfile(name="open", mode="open"))
    with pytest.raises(ConfigError):
        ClosedLoopTraffic(
            POOL,
            TrafficProfile(name="users", mode="closed", concurrency=0),
        )


def test_closed_loop_budget_and_reset():
    profile = TrafficProfile(
        name="closed", mode="closed", n_requests=9, concurrency=3, seed=7
    )
    traffic = ClosedLoopTraffic(POOL, profile)
    first = [traffic.next_text() for _ in range(10)]
    assert first[9] is None
    assert sum(1 for text in first if text is not None) == 9
    traffic.reset()
    second = [traffic.next_text() for _ in range(10)]
    assert first == second


def test_closed_loop_serving_end_to_end(prepared, config, pool):
    profile = TrafficProfile(
        name="closed-e2e", mode="closed", n_requests=12,
        concurrency=3, think_ms=5.0, repeat_rate=0.5, seed=13,
    )
    traffic = ClosedLoopTraffic(pool, profile)
    service = QueryService(materialize(prepared, config), workers=2)
    report = service.process_closed(traffic)
    assert len(report.served) == 12
    assert all(row.completion_ms >= row.arrival_ms for row in report.served)
