"""End-to-end determinism: a saturation run is a pure function of its seed.

Two complete runs — fresh backend, fresh traffic from the same profile —
must produce *byte-identical* report dicts: latency summaries, shed
counts, per-class breakdowns, and the exact shed trace (which request,
when, why).  This is the property that lets ``repro.bench.saturate``
gate shed-fraction drift exactly instead of within a band, and it must
survive composition with the fault layer (a dead shard degrades
results, not determinism).
"""

import json

from repro.core import materialize
from repro.faults.plan import FaultPlan
from repro.serve import QueryService, ServiceMetrics
from repro.synth.traffic import TrafficProfile, open_loop_requests

OVERLOAD = TrafficProfile(
    name="tiny-saturate",
    mode="open",
    n_requests=48,
    rate_qps=400.0,          # far past the tiny collection's capacity
    repeat_rate=0.25,
    deadline_ms=40.0,
    batch_fraction=0.3,
    batch_deadline_ms=80.0,
    seed=47,
)


def _run(prepared, config, pool, fault=False) -> str:
    """One full saturation run, canonicalized to its metrics byte string."""
    backend = materialize(prepared, config, shards=2)
    if fault:
        backend.fault_shard(0, FaultPlan.dead_disk())
    service = QueryService(
        backend, workers=2, max_batch=4, queue_limit=8, use_cache=False
    )
    requests = open_loop_requests(pool, OVERLOAD)
    report = service.process(requests, name=OVERLOAD.name)
    metrics = ServiceMetrics.from_report(report)
    return json.dumps(metrics.as_dict(shed_trace=report.shed), sort_keys=True)


def test_two_saturation_runs_are_byte_identical(prepared, config, pool):
    first = _run(prepared, config, pool)
    second = _run(prepared, config, pool)
    assert first == second
    cell = json.loads(first)
    assert cell["shed_queue_full"] + cell["shed_deadline"] > 0, (
        "the stream must actually overload the service for this test "
        "to exercise shed determinism"
    )
    assert cell["shed_trace"], "the shed set itself must be in the comparison"
    assert cell["admitted"] + len(cell["shed_trace"]) == cell["offered"]


def test_saturation_determinism_survives_a_dead_shard(prepared, config, pool):
    # PR3/PR4 chaos composed with overload: the fault changes *which*
    # results are degraded, never the schedule or the shed set's
    # reproducibility.
    first = _run(prepared, config, pool, fault=True)
    second = _run(prepared, config, pool, fault=True)
    assert first == second
    healthy = _run(prepared, config, pool, fault=False)
    assert json.loads(first)["offered"] == json.loads(healthy)["offered"]


def test_per_class_breakdown_is_complete(prepared, config, pool):
    cell = json.loads(_run(prepared, config, pool))
    per_class = cell["per_class"]
    assert set(per_class) >= {"interactive", "batch"}
    assert sum(bucket["offered"] for bucket in per_class.values()) == (
        cell["offered"]
    )
    assert sum(bucket["admitted"] for bucket in per_class.values()) == (
        cell["admitted"]
    )
    for bucket in per_class.values():
        assert bucket["shed_queue_full"] + bucket["shed_deadline"] <= (
            bucket["offered"]
        )
