"""The decoded-term cache: unit mechanics and engine-level invisibility.

The unit half drives :class:`repro.serve.termcache.TermCache` directly:
size-weighted LRU order, byte budget (peak included), oversize
rejection, fingerprint validation, per-term invalidation, tombstone
folding, and stats merging.  The engine half attaches a cache to the
real term-at-a-time and document-at-a-time engines and asserts the
gate's core contract in miniature: rankings and pruning counters
bit-identical to the cache-off run, with hits actually happening.
"""

import pytest

from repro.core import config_by_name, materialize
from repro.core.metrics import cold_start
from repro.errors import ConfigError
from repro.inquery import DocumentAtATimeEngine, RetrievalEngine
from repro.serve.termcache import (
    TERM_PROBE_MS,
    TermCache,
    TermCacheStats,
    merge_stats,
)


def _filled(cache, items):
    for term, nbytes in items:
        assert cache.put("postings", term, [term], nbytes)


class TestUnitMechanics:
    def test_hit_and_miss_counters(self):
        cache = TermCache(1024)
        assert cache.get("postings", "alpha") is None
        cache.put("postings", "alpha", [1, 2], 64)
        hit = cache.get("postings", "alpha")
        assert hit is not None and hit.payload == [1, 2]
        assert (cache.stats.lookups, cache.stats.hits, cache.stats.misses) \
            == (2, 1, 1)

    def test_kinds_are_distinct_keyspaces(self):
        cache = TermCache(1024)
        cache.put("postings", "alpha", "p", 8)
        cache.put("arrays", "alpha", "a", 8)
        assert cache.get("postings", "alpha").payload == "p"
        assert cache.get("arrays", "alpha").payload == "a"

    def test_lru_eviction_is_size_weighted(self):
        cache = TermCache(100, max_entry_fraction=1.0)
        _filled(cache, [("a", 40), ("b", 40)])
        assert cache.get("postings", "a") is not None  # freshen a
        cache.put("postings", "c", ["c"], 40)          # evicts b, the LRU
        assert cache.get("postings", "b") is None
        assert cache.get("postings", "a") is not None
        assert cache.get("postings", "c") is not None
        assert cache.stats.evictions == 1

    def test_budget_never_exceeded_peak_included(self):
        cache = TermCache(100, max_entry_fraction=1.0)
        for i in range(50):
            cache.put("postings", f"t{i}", i, 30)
            assert cache.stats.bytes <= 100
        assert cache.stats.peak_bytes <= 100
        assert cache.stats.evictions > 0

    def test_oversize_rejected_not_admitted(self):
        cache = TermCache(1000, max_entry_fraction=0.25)
        assert not cache.put("postings", "big", "x", 251)
        assert cache.get("postings", "big") is None
        assert cache.stats.rejected_oversize == 1
        assert cache.stats.bytes == 0

    def test_replacing_an_entry_adjusts_bytes(self):
        cache = TermCache(1000)
        cache.put("postings", "a", "v1", 100)
        cache.put("postings", "a", "v2", 40)
        assert cache.stats.bytes == 40
        assert cache.get("postings", "a").payload == "v2"

    def test_fingerprint_mismatch_drops_entry(self):
        cache = TermCache(1024)
        cache.put("postings", "a", "old", 16, fingerprint=("k1",))
        assert cache.get("postings", "a", fingerprint=("k2",)) is None
        # The stale entry is gone entirely, not just skipped.
        assert cache.stats.bytes == 0
        assert cache.stats.misses == 1

    def test_invalidate_terms_drops_every_kind(self):
        cache = TermCache(4096)
        cache.put("postings", "a", 1, 16)
        cache.put("arrays", "a", 2, 16)
        cache.put("stream", "a", 3, 16)
        cache.put("postings", "b", 4, 16)
        dropped = cache.invalidate_terms(["a", "missing"])
        assert dropped == 3
        assert cache.get("postings", "a") is None
        assert cache.get("postings", "b") is not None
        assert cache.stats.invalidated_terms == 3

    def test_fold_tombstones_reaches_every_entry(self):
        cache = TermCache(4096)
        cache.put("postings", "a", 1, 16, dead={7})
        cache.put("postings", "b", 2, 16)
        cache.fold_tombstones({9})
        assert cache.get("postings", "a").dead == frozenset({7, 9})
        assert cache.get("postings", "b").dead == frozenset({9})

    def test_clear_resets_residency_not_counters(self):
        cache = TermCache(1024)
        cache.put("postings", "a", 1, 16)
        cache.get("postings", "a")
        cache.clear()
        assert cache.get("postings", "a") is None
        assert cache.stats.hits == 1
        assert cache.stats.bytes == 0

    def test_config_errors(self):
        with pytest.raises(ConfigError):
            TermCache(0)
        with pytest.raises(ConfigError):
            TermCache(1024, max_entry_fraction=0.0)
        with pytest.raises(ConfigError):
            TermCache(1024, max_entry_fraction=1.5)

    def test_probe_cost_is_exported(self):
        assert TermCache(64).probe_ms == TERM_PROBE_MS

    def test_trace_records_operations_in_order(self):
        cache = TermCache(1024, record_trace=True)
        cache.get("postings", "a")
        cache.put("postings", "a", 1, 16)
        cache.get("postings", "a")
        ops = [op for op, _kind, _term in cache.trace]
        assert ops == ["miss", "put", "hit"]

    def test_merge_stats_sums_counters(self):
        one, two = TermCache(1024, shard=0), TermCache(1024, shard=1)
        one.put("postings", "a", 1, 16)
        one.get("postings", "a")
        two.get("postings", "b")
        merged = merge_stats([one, two])
        assert isinstance(merged, TermCacheStats)
        assert merged.lookups == 2
        assert merged.hits == 1
        assert merged.misses == 1
        assert merged.bytes == 16


def _run_engine(prepared, config, stream, engine_kind, prune, cache):
    system = materialize(prepared, config)
    cold_start(system)
    if engine_kind == "taat":
        engine = RetrievalEngine(
            system.index, top_k=20,
            use_reservation=config.use_reservation,
            use_fastpath=config.use_fastpath,
        )
    else:
        engine = DocumentAtATimeEngine(
            system.index, top_k=20,
            use_fastpath=config.use_fastpath, prune=prune,
        )
    engine.term_cache = cache
    results = [engine.run_query(text) for text in stream]
    return [
        (
            r.ranking,
            getattr(r, "documents_scored", None),
            getattr(r, "documents_skipped", None),
            getattr(r, "blocks_skipped", None),
        )
        for r in results
    ]


class TestEngineInvisibility:
    @pytest.mark.parametrize("fastpath", [False, True])
    def test_taat_identical_with_hits(self, prepared, pool, fastpath):
        config = config_by_name("mneme-linked", use_fastpath=fastpath)
        stream = pool[:6] * 3
        cache = TermCache(1 << 20)
        baseline = _run_engine(prepared, config, stream, "taat", "off", None)
        cached = _run_engine(prepared, config, stream, "taat", "off", cache)
        assert cached == baseline
        assert cache.stats.hits > 0
        assert cache.stats.peak_bytes <= 1 << 20

    @pytest.mark.parametrize("prune", ["off", "require"])
    def test_daat_identical_with_hits(self, prepared, daat_pool, prune):
        config = config_by_name("mneme-linked")
        stream = daat_pool[:4] * 3
        cache = TermCache(1 << 20)
        baseline = _run_engine(prepared, config, stream, "daat", prune, None)
        cached = _run_engine(prepared, config, stream, "daat", prune, cache)
        assert cached == baseline
        assert cache.stats.hits > 0

    def test_eviction_pressure_stays_identical(self, prepared, pool):
        config = config_by_name("mneme-linked")
        stream = pool[:6] * 3
        probe = TermCache(1 << 20)
        baseline = _run_engine(prepared, config, stream, "taat", "off", None)
        _run_engine(prepared, config, stream, "taat", "off", probe)
        budget = max(256, probe.stats.peak_bytes // 2)
        cache = TermCache(budget, max_entry_fraction=1.0)
        cached = _run_engine(prepared, config, stream, "taat", "off", cache)
        assert cached == baseline
        assert cache.stats.evictions > 0
        assert cache.stats.peak_bytes <= budget
