"""Unit tests for the epoch-invalidated LRU result cache."""

import pytest

from repro.errors import CacheInconsistencyError, ConfigError
from repro.inquery.engine import QueryResult
from repro.serve import ResultCache, clone_result


def complete(query, score=1.0):
    return QueryResult(query=query, ranking=[(1, score), (2, score / 2)])


def degraded(query):
    return QueryResult(
        query=query, ranking=[(1, 0.5)],
        degraded=True, terms_attempted=4, terms_failed=1,
    )


def test_capacity_must_be_positive():
    with pytest.raises(ConfigError):
        ResultCache(capacity=0)


def test_get_miss_returns_none_and_counts():
    cache = ResultCache(capacity=4)
    assert cache.get("absent") is None
    assert cache.stats.lookups == 1
    assert cache.stats.misses == 1
    assert cache.stats.hits == 0


def test_put_get_roundtrip_is_bit_identical():
    cache = ResultCache(capacity=4)
    original = complete("q1")
    assert cache.put("k1", original)
    served = cache.get("k1")
    assert served.ranking == original.ranking
    assert served.query == original.query
    assert cache.stats.hits == 1


def test_hit_relabels_query_text_only():
    cache = ResultCache(capacity=4)
    cache.put("k1", complete("Original Spelling"))
    served = cache.get("k1", query_text="other spelling")
    assert served.query == "other spelling"
    assert served.ranking == complete("Original Spelling").ranking


def test_entries_are_isolated_both_ways():
    cache = ResultCache(capacity=4)
    original = complete("q1")
    cache.put("k1", original)
    original.ranking.append((99, 0.0))  # caller mutates after insert
    first = cache.get("k1")
    assert (99, 0.0) not in first.ranking
    first.ranking.clear()  # caller mutates a served copy
    second = cache.get("k1")
    assert second.ranking == complete("q1").ranking


def test_lru_eviction_order():
    cache = ResultCache(capacity=2)
    cache.put("a", complete("a"))
    cache.put("b", complete("b"))
    assert cache.get("a") is not None  # freshen a: b is now LRU
    cache.put("c", complete("c"))     # evicts b
    assert cache.keys() == ["a", "c"]
    assert "b" not in cache
    assert cache.stats.evictions == 1


def test_reinsert_refreshes_recency():
    cache = ResultCache(capacity=2)
    cache.put("a", complete("a"))
    cache.put("b", complete("b"))
    cache.put("a", complete("a"))  # refresh: b becomes LRU
    cache.put("c", complete("c"))
    assert cache.keys() == ["a", "c"]


def test_degraded_results_are_refused():
    cache = ResultCache(capacity=4)
    assert not cache.put("bad", degraded("q"))
    assert len(cache) == 0
    assert "bad" not in cache
    assert cache.stats.rejected_degraded == 1
    assert cache.stats.insertions == 0


def test_invalidate_drops_everything_and_bumps_epoch():
    cache = ResultCache(capacity=4)
    cache.put("a", complete("a"))
    cache.put("b", complete("b"))
    before = cache.epoch
    assert cache.invalidate("rebuild") == 2
    assert cache.epoch == before + 1
    assert len(cache) == 0
    assert cache.get("a") is None
    assert cache.stats.invalidations == 1


def test_stale_epoch_entry_raises_inconsistency():
    cache = ResultCache(capacity=4)
    cache.put("a", complete("a"))
    # Simulate a corrupted survivor: an entry whose stamp predates the
    # current epoch (invalidate() itself clears the table, so this can
    # only happen through a bug — and must never be served silently).
    epoch, result = cache._entries["a"]
    cache._epoch += 1
    cache._entries["a"] = (epoch, result)
    with pytest.raises(CacheInconsistencyError) as excinfo:
        cache.get("a")
    assert excinfo.value.key == "a"


def test_clone_result_preserves_runtime_class():
    class Subclass(QueryResult):
        pass

    original = Subclass(query="q", ranking=[(1, 1.0)])
    duplicate = clone_result(original, query_text="relabel")
    assert type(duplicate) is Subclass
    assert duplicate.query == "relabel"


def test_hit_rate_tracks_lookups():
    cache = ResultCache(capacity=4)
    cache.put("a", complete("a"))
    cache.get("a")
    cache.get("missing")
    assert cache.stats.hit_rate == pytest.approx(0.5)
