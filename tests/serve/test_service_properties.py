"""Property: served rankings are bit-identical to cold evaluation.

Hypothesis draws an engine, a shard count, a partitioner, and a request
stream with repeats, then checks every served ranking — hit, miss, or
in-wave share — against the cold single-disk reference.  This is the
same invariant the serve gate checks on the paper collections, here
explored over the service configuration space.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import materialize
from repro.serve import QueryService
from repro.synth.traffic import TimedRequest

from .conftest import reference_rankings

SHARD_COUNTS = (1, 2, 4)
PARTITIONERS = ("hash", "range")

_backends = {}
_references = {}


def _backend(prepared, config, shards, partitioner):
    """Memoized: QueryService cold-starts whatever it is handed."""
    key = (shards, partitioner)
    if key not in _backends:
        _backends[key] = materialize(
            prepared, config, shards=shards, partitioner=partitioner
        )
    return _backends[key]


def _reference(prepared, config, pool, engine):
    if engine not in _references:
        _references[engine] = reference_rankings(
            prepared, config, pool, engine=engine
        )
    return _references[engine]


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_served_rankings_bit_identical_to_cold_evaluation(
    data, prepared, config, pool, daat_pool
):
    engine = data.draw(st.sampled_from(("taat", "daat")), label="engine")
    shards = data.draw(st.sampled_from(SHARD_COUNTS), label="shards")
    partitioner = data.draw(st.sampled_from(PARTITIONERS), label="partitioner")
    use_cache = data.draw(st.booleans(), label="use_cache")
    source = daat_pool if engine == "daat" else pool
    texts = data.draw(
        st.lists(st.sampled_from(source), min_size=1, max_size=10),
        label="stream",
    )
    reference = _reference(prepared, config, source, engine)
    service = QueryService(
        _backend(prepared, config, shards, partitioner),
        engine=engine,
        workers=data.draw(st.sampled_from((1, 2)), label="workers"),
        max_batch=data.draw(st.sampled_from((1, 4)), label="max_batch"),
        use_cache=use_cache,
    )
    report = service.process(
        [TimedRequest(text=text, arrival_ms=0.0) for text in texts]
    )
    assert len(report.served) == len(texts)
    for row in report.served:
        assert row.result.ranking == reference[row.text], (
            f"{row.outcome} serving of {row.text!r} diverged from the cold "
            f"single-disk {engine} evaluation "
            f"(shards={shards}, partitioner={partitioner})"
        )
    if not use_cache:
        assert all(row.outcome == "miss" for row in report.served)
