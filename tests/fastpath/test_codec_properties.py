"""Property tests: the vector codec is byte-for-byte the reference codec."""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.fastpath.codec import (
    arrays_from_postings,
    decode_record_arrays,
    decode_record_fast,
    encode_record_fast,
)
from repro.fastpath.vbyte import MAX_VALUE, decode_stream, encode_stream
from repro.inquery.postings import (
    _decode_record_py,
    _encode_record_py,
    decode_record,
    encode_record,
    merge_records,
    vbyte_encode,
)


def _vb(value: int) -> bytes:
    out = bytearray()
    vbyte_encode(value, out)
    return bytes(out)

# -- strategies ---------------------------------------------------------------

positions_st = st.lists(
    st.integers(min_value=0, max_value=5000), min_size=1, max_size=30,
    unique=True,
).map(sorted)

postings_st = st.lists(
    st.tuples(st.integers(min_value=1, max_value=100_000), positions_st),
    min_size=0,
    max_size=40,
    unique_by=lambda pair: pair[0],
).map(
    lambda pairs: [(doc, tuple(pos)) for doc, pos in sorted(pairs)]
)

values_st = st.lists(
    st.integers(min_value=0, max_value=MAX_VALUE), min_size=0, max_size=200
)


# -- v-byte stream kernels ----------------------------------------------------

@given(values=values_st)
@settings(max_examples=100, deadline=None)
def test_encode_stream_matches_reference_bytes(values):
    buffer, lengths = encode_stream(np.asarray(values, dtype=np.int64))
    reference = b"".join(_vb(value) for value in values)
    assert buffer == reference
    assert lengths.tolist() == [len(_vb(value)) for value in values]


@given(values=values_st)
@settings(max_examples=100, deadline=None)
def test_decode_stream_round_trips(values):
    buffer, _lengths = encode_stream(np.asarray(values, dtype=np.int64))
    decoded, clean = decode_stream(buffer)
    assert clean
    assert decoded.tolist() == values


@given(values=st.lists(st.integers(min_value=0, max_value=MAX_VALUE),
                       min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_decode_stream_truncated_buffer_is_not_clean(values):
    buffer, _ = encode_stream(np.asarray(values, dtype=np.int64))
    # Chop the terminator byte off the final integer.  If that integer
    # was a single byte the rest of the buffer is still clean;
    # otherwise its continuation bytes dangle.
    decoded, clean = decode_stream(buffer[:-1])
    assert clean == (len(_vb(values[-1])) == 1)
    assert decoded.tolist() == values[:-1]


def test_encode_stream_rejects_negative_like_reference():
    with pytest.raises(IndexError_, match="negative"):
        encode_stream(np.asarray([3, -7], dtype=np.int64))
    with pytest.raises(IndexError_):
        _vb(-7)


# -- record codec -------------------------------------------------------------

@given(postings=postings_st)
@settings(max_examples=100, deadline=None)
def test_encode_record_fast_is_byte_identical(postings):
    assert encode_record_fast(postings) == _encode_record_py(postings)


@given(postings=postings_st)
@settings(max_examples=100, deadline=None)
def test_decode_record_fast_matches_reference(postings):
    record = _encode_record_py(postings)
    assert decode_record_fast(record) == _decode_record_py(record)


@given(postings=postings_st)
@settings(max_examples=100, deadline=None)
def test_record_arrays_round_trip(postings):
    record = _encode_record_py(postings)
    arrays = decode_record_arrays(record)
    assert arrays.to_postings() == postings
    assert arrays.df == len(postings)
    assert arrays.ctf == sum(len(pos) for _doc, pos in postings)
    rebuilt = arrays_from_postings(postings)
    assert rebuilt.doc_ids.tolist() == arrays.doc_ids.tolist()
    assert rebuilt.positions.tolist() == arrays.positions.tolist()


@given(postings=postings_st)
@settings(max_examples=60, deadline=None)
def test_dispatchers_agree_with_scalar(postings):
    # The public entry points dispatch on size; both sides of the
    # cutover must produce identical results.
    record = encode_record(postings)
    assert record == _encode_record_py(postings)
    assert decode_record(record) == _decode_record_py(record)


def test_decode_record_fast_raises_reference_errors():
    # Truncated record: both decoders raise the canonical IndexError_.
    record = _encode_record_py([(1, (0, 2)), (5, (1,))])
    for cut in range(1, len(record)):
        truncated = record[:cut]
        try:
            expected = _decode_record_py(truncated)
        except IndexError_:
            with pytest.raises(IndexError_):
                decode_record_fast(truncated)
        else:
            assert decode_record_fast(truncated) == expected


# -- merge_records append fast path -------------------------------------------

extra_st = st.lists(
    st.tuples(st.integers(min_value=1, max_value=200_000), positions_st),
    min_size=1,
    max_size=10,
    unique_by=lambda pair: pair[0],
).map(lambda pairs: [(doc, tuple(pos)) for doc, pos in sorted(pairs)])


@given(base=postings_st, extra=extra_st)
@settings(max_examples=100, deadline=None)
def test_merge_records_matches_decode_merge_encode(base, extra):
    base_record = _encode_record_py(base)
    merged = merge_records(base_record, extra)
    by_doc = dict(base)
    by_doc.update(dict(extra))
    expected = _encode_record_py(sorted(by_doc.items()))
    assert merged == expected


@given(base=postings_st, extra=extra_st)
@settings(max_examples=60, deadline=None)
def test_merge_records_append_only_suffix(base, extra):
    # When every new document sorts after the base, the merge must
    # preserve the base encoding as a strict prefix (the append path).
    last = base[-1][0] if base else 0
    shifted = [(doc + last, positions) for doc, positions in extra]
    base_record = _encode_record_py(base)
    merged = merge_records(base_record, shifted)
    expected = _encode_record_py(base + shifted)
    assert merged == expected
