"""Document-at-a-time fast path: observationally identical scoring.

The vectorized DAAT scorer (:mod:`repro.fastpath.daat`) batches each
stream's resident chunk into arrays, but must replay the reference
merge exactly: bit-identical rankings, the same ``peak_resident_bytes``
and ``documents_scored``, the same simulated-clock charges, the same
``I``/``A``/``B`` counters and buffer hits.  These properties check it
against both the reference DAAT engine and the term-at-a-time engine,
over generated flat ``#sum``/``#wsum`` queries on both Mneme backends.
"""

import pytest

pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from repro.fastpath import use_fastpath
from repro.inquery import (
    Document,
    DocumentAtATimeEngine,
    IndexBuilder,
    LinkedMnemeInvertedFile,
    MnemeInvertedFile,
    RetrievalEngine,
)
from repro.inquery.invfile import BufferSizes
from repro.simdisk import SimClock, SimDisk, SimFileSystem

VOCAB = [f"t{i}" for i in range(12)]

corpus_st = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=20),
    min_size=1,
    max_size=25,
)

terms_st = st.lists(st.sampled_from(VOCAB + ["zzz"]), min_size=1, max_size=5)


def build(corpus, linked=False, cached=False):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    if linked:
        store = LinkedMnemeInvertedFile(fs, medium_max_bytes=24, chunk_bytes=64)
    else:
        store = MnemeInvertedFile(fs)
    builder = IndexBuilder(fs, store, stem_fn=str)
    for doc_id, tokens in enumerate(corpus, start=1):
        builder.add_document(Document(doc_id, tokens=tokens))
    index = builder.finalize()
    if cached:
        store.attach_buffers(BufferSizes(small=4096, medium=65536, large=262144))
    return index


def observe_daat(corpus, query, fast, linked=False, cached=False):
    """Run one DAAT query on a fresh system; return every observable."""
    with use_fastpath(fast):
        index = build(corpus, linked=linked, cached=cached)
        store = index.store
        clock = index.fs.disk.clock
        disk_start = index.fs.disk.stats.copy()
        file_starts = [(f, f.stats.copy()) for f in store.files]
        lookups_start = store.record_lookups
        start = clock.snapshot()
        result = DocumentAtATimeEngine(
            index, top_k=30, use_fastpath=fast
        ).run_query(query)
        elapsed = clock.since(start)
    return {
        "ranking": result.ranking,
        "terms_looked_up": result.terms_looked_up,
        "peak_resident_bytes": result.peak_resident_bytes,
        "documents_scored": result.documents_scored,
        "clock": (elapsed.wall_ms, elapsed.user_ms, elapsed.system_io_ms),
        "io_inputs": index.fs.disk.stats.blocks_read - disk_start.blocks_read,
        "file_accesses": sum(
            (f.stats - s).read_calls for f, s in file_starts
        ),
        "record_lookups": store.record_lookups - lookups_start,
        "bytes_from_file": sum(
            (f.stats - s).bytes_delivered for f, s in file_starts
        ),
        "buffers": {
            name: (stats.refs, stats.hits)
            for name, stats in store.buffer_stats().items()
        },
    }


def taat_ranking(corpus, query, linked=False):
    index = build(corpus, linked=linked)
    return RetrievalEngine(index, top_k=30).run_query(query).ranking


def assert_daat_invariant(corpus, query, linked=False, cached=False):
    ref = observe_daat(corpus, query, fast=False, linked=linked, cached=cached)
    fast = observe_daat(corpus, query, fast=True, linked=linked, cached=cached)
    assert fast == ref  # every observable, bit for bit
    # And both agree with term-at-a-time on the ranking itself.
    assert ref["ranking"] == taat_ranking(corpus, query, linked=linked)


@given(corpus=corpus_st, terms=terms_st, linked=st.booleans())
@settings(max_examples=40, deadline=None)
def test_daat_sum_identical(corpus, terms, linked):
    query = "#sum( " + " ".join(terms) + " )"
    assert_daat_invariant(corpus, query, linked=linked)


@given(
    corpus=corpus_st,
    terms=terms_st,
    weights=st.lists(st.integers(min_value=1, max_value=7), min_size=5, max_size=5),
    linked=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_daat_wsum_identical(corpus, terms, weights, linked):
    inner = " ".join(f"{w} {t}" for w, t in zip(weights, terms))
    assert_daat_invariant(corpus, f"#wsum( {inner} )", linked=linked)


@given(corpus=corpus_st, terms=terms_st)
@settings(max_examples=20, deadline=None)
def test_daat_buffered_store_identical(corpus, terms):
    # With LRU buffers attached, hit patterns depend on the exact fetch
    # and refill sequence — the windowed scorer must not reorder any.
    query = "#sum( " + " ".join(terms) + " )"
    assert_daat_invariant(corpus, query, linked=True, cached=True)


@given(corpus=corpus_st, term=st.sampled_from(VOCAB), linked=st.booleans())
@settings(max_examples=15, deadline=None)
def test_daat_single_term_identical(corpus, term, linked):
    # Single-term #sum skips the division — a distinct fold path.
    assert_daat_invariant(corpus, f"#sum( {term} )", linked=linked)


@given(corpus=corpus_st, linked=st.booleans())
@settings(max_examples=10, deadline=None)
def test_daat_all_missing_terms_identical(corpus, linked):
    assert_daat_invariant(corpus, "#sum( zzz yyy )", linked=linked)
