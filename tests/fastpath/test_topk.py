"""Top-k selection must reproduce the full sort's ranking exactly."""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from repro.fastpath.beliefs import ArrayBeliefs
from repro.fastpath.topk import rank_arrays, rank_dict

scores_st = st.dictionaries(
    st.integers(min_value=1, max_value=500),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=0,
    max_size=120,
)

k_st = st.integers(min_value=1, max_value=60)


def full_sort(scores, k):
    return sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:k]


@given(scores=scores_st, k=k_st)
@settings(max_examples=100, deadline=None)
def test_rank_dict_equals_full_sort(scores, k):
    assert rank_dict(scores, k) == full_sort(scores, k)


@given(scores=scores_st, k=k_st)
@settings(max_examples=100, deadline=None)
def test_rank_arrays_equals_full_sort(scores, k):
    doc_ids = np.fromiter(sorted(scores), dtype=np.int64, count=len(scores))
    beliefs = np.fromiter(
        (scores[d] for d in sorted(scores)), dtype=np.float64, count=len(scores)
    )
    arrays = ArrayBeliefs(doc_ids=doc_ids, beliefs=beliefs)
    assert rank_arrays(arrays, k) == full_sort(scores, k)


@given(
    docs=st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                  max_size=40, unique=True).map(sorted),
    belief=st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
    k=k_st,
)
@settings(max_examples=50, deadline=None)
def test_rank_arrays_all_ties(docs, belief, k):
    # Every document tied: ranking must fall back to ascending doc id.
    doc_ids = np.asarray(docs, dtype=np.int64)
    beliefs = np.full(doc_ids.size, belief, dtype=np.float64)
    ranking = rank_arrays(ArrayBeliefs(doc_ids=doc_ids, beliefs=beliefs), k)
    assert ranking == [(d, belief) for d in docs[:k]]
