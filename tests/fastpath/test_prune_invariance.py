"""Dynamic pruning: bit-identical top-k, honest counters, durable bounds.

The MaxScore engine (:mod:`repro.fastpath.prune`) skips documents and
blocks that provably cannot enter the top-k, so its I/O and CPU
observables legitimately shrink — but the ranking itself must be
*bit-identical* to exhaustive evaluation: same documents, same belief
floats, same tie-break order, at every ``k``, on every backend, with
the fast path on or off (``REPRO_FASTPATH=0`` exercises the pure-Python
reference driver).  These properties check all of that over generated
corpora, plus the metadata's durability: per-term bounds survive
``gc.compact`` and write-ahead-log recovery, and sharded pruned runs
reproduce the single-disk exhaustive rankings.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.bench.wallclock import _daat_queries
from repro.core import config_by_name, materialize, prepare_collection
from repro.core.metrics import cold_start
from repro.fastpath import use_fastpath
from repro.inquery import (
    Document,
    DocumentAtATimeEngine,
    IndexBuilder,
    LinkedMnemeInvertedFile,
    MnemeInvertedFile,
    RetrievalEngine,
)
from repro.mneme import RedoLog, compact, recover
from repro.shard import materialize_sharded, measure_sharded_run
from repro.simdisk import SimClock, SimDisk, SimFileSystem
from repro.synth import (
    CollectionProfile,
    QueryProfile,
    SyntheticCollection,
    generate_query_set,
)

VOCAB = [f"t{i}" for i in range(12)]

corpus_st = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=20),
    min_size=1,
    max_size=25,
)

terms_st = st.lists(st.sampled_from(VOCAB + ["zzz"]), min_size=1, max_size=5)

k_st = st.sampled_from([1, 5, 10, 100])


def build(corpus, linked=False, wal=None):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    if wal is not None:
        wal = RedoLog(fs.create("invfile.wal"))
    if linked:
        store = LinkedMnemeInvertedFile(
            fs, medium_max_bytes=24, chunk_bytes=64, wal=wal
        )
    else:
        store = MnemeInvertedFile(fs, wal=wal)
    builder = IndexBuilder(fs, store, stem_fn=str)
    for doc_id, tokens in enumerate(corpus, start=1):
        builder.add_document(Document(doc_id, tokens=tokens))
    return builder.finalize()


def observe(index, query, k, fast, prune):
    with use_fastpath(fast):
        result = DocumentAtATimeEngine(
            index, top_k=k, use_fastpath=fast, prune=prune
        ).run_query(query)
    return result


def counters(result):
    return (
        result.documents_scored,
        result.documents_skipped,
        result.blocks_skipped,
        result.prune_threshold_updates,
        result.peak_resident_bytes,
    )


def assert_pruned_invariant(corpus, query, k, linked, fast):
    exhaustive = observe(build(corpus, linked), query, k, fast, "off")
    pruned = observe(build(corpus, linked), query, k, fast, "auto")
    # The contract: same top-k, belief for belief, tie for tie.
    assert pruned.ranking == exhaustive.ranking
    # Exhaustive paths never report pruning work.
    assert not exhaustive.pruned
    assert exhaustive.documents_skipped == 0
    assert exhaustive.blocks_skipped == 0
    assert exhaustive.prune_threshold_updates == 0
    # And the term-at-a-time engine agrees on the ranking itself.
    taat = RetrievalEngine(build(corpus, linked), top_k=k).run_query(query)
    assert pruned.ranking == taat.ranking
    return pruned


@given(corpus=corpus_st, terms=terms_st, k=k_st, linked=st.booleans())
@settings(max_examples=40, deadline=None)
def test_pruned_sum_identical(corpus, terms, k, linked):
    query = "#sum( " + " ".join(terms) + " )"
    assert_pruned_invariant(corpus, query, k, linked, fast=True)


@given(
    corpus=corpus_st,
    terms=terms_st,
    weights=st.lists(st.integers(min_value=1, max_value=7), min_size=5, max_size=5),
    k=k_st,
)
@settings(max_examples=25, deadline=None)
def test_pruned_wsum_identical(corpus, terms, weights, k):
    inner = " ".join(f"{w} {t}" for w, t in zip(weights, terms))
    assert_pruned_invariant(corpus, f"#wsum( {inner} )", k, True, fast=True)


@given(corpus=corpus_st, terms=terms_st, k=k_st, linked=st.booleans())
@settings(max_examples=25, deadline=None)
def test_reference_driver_identical(corpus, terms, k, linked):
    # REPRO_FASTPATH=0 territory: the pure-Python reference driver must
    # satisfy the same contract...
    query = "#sum( " + " ".join(terms) + " )"
    ref = assert_pruned_invariant(corpus, query, k, linked, fast=False)
    # ...and agree with the vectorized driver on every pruning
    # observable, not just the ranking: same documents scored and
    # skipped, same block skips, same threshold updates, same resident
    # peak.  The two drivers are one algorithm in two dialects.
    fast = observe(build(corpus, linked), query, k, True, "auto")
    assert fast.ranking == ref.ranking
    assert counters(fast) == counters(ref)


@given(corpus=corpus_st, term=st.sampled_from(VOCAB), k=k_st)
@settings(max_examples=15, deadline=None)
def test_pruned_single_term_identical(corpus, term, k):
    # Single-term queries: the whole list is essential; pruning can
    # only cut scoring after the heap fills.
    assert_pruned_invariant(corpus, f"#sum( {term} )", k, True, fast=True)


@given(corpus=corpus_st, k=k_st, linked=st.booleans())
@settings(max_examples=10, deadline=None)
def test_pruned_all_missing_terms_identical(corpus, k, linked):
    assert_pruned_invariant(corpus, "#sum( zzz yyy )", k, linked, fast=True)


# -- metadata durability ----------------------------------------------------

DURABLE_CORPUS = [
    [VOCAB[(i + j * j) % len(VOCAB)] for j in range(1 + i % 17)]
    for i in range(60)
]
DURABLE_QUERY = "#sum( t1 t3 t5 )"


def test_bounds_survive_compaction():
    """``gc.compact`` relocates every segment; bounds keys must hold."""
    index = build(DURABLE_CORPUS, linked=True)
    expected = observe(index, DURABLE_QUERY, 5, True, "off").ranking
    before = observe(index, DURABLE_QUERY, 5, True, "require")
    report = compact(index.store.mfile)
    assert report.segments_copied > 0
    after = observe(index, DURABLE_QUERY, 5, True, "require")
    assert after.ranking == expected
    assert after.ranking == before.ranking
    assert counters(after) == counters(before)


def test_bounds_survive_wal_recovery():
    """Replaying the redo log restores postings *and* bound sidecars."""
    index = build(DURABLE_CORPUS, linked=True, wal=True)
    expected = observe(index, DURABLE_QUERY, 5, True, "off").ranking
    before = observe(index, DURABLE_QUERY, 5, True, "require")
    mfile = index.store.mfile
    # Crash: lose the main file body; the redo log restores it.
    image = mfile.main.read(0, mfile.main.size)
    mfile.main.write(16, b"\x00" * (mfile.main.size - 16))
    recover(mfile.wal, mfile.main)
    assert mfile.main.read(0, mfile.main.size) == image
    after = observe(index, DURABLE_QUERY, 5, True, "require")
    assert after.ranking == expected
    assert counters(after) == counters(before)


# -- sharded composition ----------------------------------------------------

TINY = CollectionProfile(
    name="tiny-prune", models="test", documents=220, mean_doc_length=50,
    doc_length_sigma=0.5, vocab_size=2500, seed=43,
)
PRUNE_QUERIES = QueryProfile(
    name="prune-weighted", style="weighted", n_queries=8,
    mean_terms=4, seed=211,
)


@pytest.fixture(scope="module")
def shard_setup():
    collection = SyntheticCollection(TINY)
    prepared = prepare_collection(collection)
    config = config_by_name("mneme-cache")
    queries = _daat_queries(
        generate_query_set(collection, PRUNE_QUERIES).queries
    )
    baseline = materialize(prepared, config)
    cold_start(baseline)
    engine = DocumentAtATimeEngine(
        baseline.index, top_k=10, use_fastpath=config.use_fastpath
    )
    reference = [r.ranking for r in engine.run_batch(queries)]
    return prepared, config, queries, reference


@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_sharded_pruned_rankings_bit_identical(shard_setup, n_shards):
    prepared, config, queries, reference = shard_setup
    sharded = materialize_sharded(prepared, config, n_shards=n_shards)
    metrics = measure_sharded_run(
        sharded, queries, query_set_name="prune-weighted",
        engine="daat", top_k=10, prune="auto",
    )
    assert [r.ranking for r in metrics.results] == reference
    # The counters must show pruning actually happened somewhere.
    assert metrics.documents_skipped > 0
