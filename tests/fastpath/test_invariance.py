"""The fast path's hard invariant: observationally identical evaluation.

Same rankings (bit-identical beliefs), same simulated clock totals,
same buffer statistics — across every query operator, on both engine
paths, over randomized corpora.  The fast path may only change real
wall-clock time.
"""

import pytest

pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from repro.fastpath import use_fastpath
from repro.inquery import Document, IndexBuilder, MnemeInvertedFile, RetrievalEngine
from repro.inquery.invfile import BufferSizes
from repro.simdisk import SimClock, SimDisk, SimFileSystem

VOCAB = [f"t{i}" for i in range(10)]

corpus_st = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=25),
    min_size=1,
    max_size=20,
)

terms_st = st.lists(st.sampled_from(VOCAB + ["zzz"]), min_size=1, max_size=4)


def build(corpus, cached=False):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    store = MnemeInvertedFile(fs)
    builder = IndexBuilder(fs, store, stem_fn=str)
    for doc_id, tokens in enumerate(corpus, start=1):
        builder.add_document(Document(doc_id, tokens=tokens))
    index = builder.finalize()
    if cached:
        store.attach_buffers(BufferSizes(small=4096, medium=65536, large=262144))
    return index


def run_both(corpus, query, cached=False):
    """Evaluate one query on both paths over identical fresh systems."""
    outcomes = []
    for fast in (False, True):
        with use_fastpath(fast):
            index = build(corpus, cached=cached)
            clock = index.fs.disk.clock
            start = clock.snapshot()
            result = RetrievalEngine(index, top_k=30, use_fastpath=fast).run_query(query)
            elapsed = clock.since(start)
            buffers = {
                name: (stats.refs, stats.hits)
                for name, stats in index.store.buffer_stats().items()
            }
            outcomes.append((result, elapsed, buffers))
    return outcomes


def assert_identical(outcomes):
    (ref, ref_clock, ref_buf), (fast, fast_clock, fast_buf) = outcomes
    assert fast.ranking == ref.ranking  # bit-identical beliefs and order
    assert fast.terms_looked_up == ref.terms_looked_up
    assert (fast_clock.wall_ms, fast_clock.user_ms, fast_clock.system_io_ms) == (
        ref_clock.wall_ms, ref_clock.user_ms, ref_clock.system_io_ms,
    )
    assert fast_buf == ref_buf


@given(corpus=corpus_st, terms=terms_st, op=st.sampled_from(
    ["sum", "and", "or", "max"]
))
@settings(max_examples=40, deadline=None)
def test_combination_operators_identical(corpus, terms, op):
    query = f"#{op}( " + " ".join(terms) + " )"
    assert_identical(run_both(corpus, query))


@given(
    corpus=corpus_st,
    terms=terms_st,
    weights=st.lists(st.integers(min_value=1, max_value=7), min_size=4, max_size=4),
)
@settings(max_examples=30, deadline=None)
def test_wsum_identical(corpus, terms, weights):
    inner = " ".join(f"{w} {t}" for w, t in zip(weights, terms))
    assert_identical(run_both(corpus, f"#wsum( {inner} )"))


@given(corpus=corpus_st, term=st.sampled_from(VOCAB))
@settings(max_examples=20, deadline=None)
def test_not_identical(corpus, term):
    assert_identical(run_both(corpus, f"#not( {term} )"))


@given(corpus=corpus_st, terms=st.lists(st.sampled_from(VOCAB), min_size=2, max_size=3))
@settings(max_examples=25, deadline=None)
def test_proximity_operators_identical(corpus, terms):
    # Proximity/synonym nodes reuse the reference implementation, but
    # their dict tables must mix with array tables transparently.
    inner = " ".join(terms)
    for query in (
        f"#phrase( {inner} )",
        f"#od2( {inner} )",
        f"#uw4( {inner} )",
        f"#syn( {inner} )",
        f"#sum( #phrase( {inner} ) {terms[0]} )",
    ):
        assert_identical(run_both(corpus, query))


@given(corpus=corpus_st, terms=terms_st)
@settings(max_examples=20, deadline=None)
def test_nested_queries_identical(corpus, terms):
    inner = " ".join(terms)
    query = f"#sum( #and( {inner} ) #or( {inner} ) #max( {inner} ) )"
    assert_identical(run_both(corpus, query))


@given(corpus=corpus_st, terms=terms_st)
@settings(max_examples=15, deadline=None)
def test_buffered_store_identical(corpus, terms):
    # With LRU buffers attached, hit patterns depend on the exact fetch
    # sequence — the fast path must not reorder or elide any access.
    query = "#sum( " + " ".join(terms) + " )"
    assert_identical(run_both(corpus, query, cached=True))


@given(corpus=corpus_st, terms=terms_st)
@settings(max_examples=15, deadline=None)
def test_repeated_queries_identical(corpus, terms):
    # The decode memo kicks in on repeats; charges must not change.
    query = "#sum( " + " ".join(terms) + " )"
    outcomes = []
    for fast in (False, True):
        with use_fastpath(fast):
            index = build(corpus, cached=True)
            clock = index.fs.disk.clock
            engine = RetrievalEngine(index, top_k=30, use_fastpath=fast)
            start = clock.snapshot()
            results = engine.run_batch([query, query, query])
            elapsed = clock.since(start)
            outcomes.append((results, elapsed))
    (ref, ref_clock), (fast, fast_clock) = outcomes
    assert [r.ranking for r in fast] == [r.ranking for r in ref]
    assert (fast_clock.wall_ms, fast_clock.user_ms) == (
        ref_clock.wall_ms, ref_clock.user_ms,
    )
