"""The fast-path kill switch must be honored end to end.

``REPRO_FASTPATH=0`` (read once at import) and the ``use_fastpath``
context manager both have to route the document-at-a-time engine and
the proximity operators through the pure-Python reference code — no
fast kernel may run.  Verified by poisoning the kernel entry points and
evaluating real queries.
"""

import os
import subprocess
import sys

import pytest

pytest.importorskip("numpy")

from repro.fastpath import state, use_fastpath
from repro.inquery import (
    Document,
    DocumentAtATimeEngine,
    IndexBuilder,
    MnemeInvertedFile,
    RetrievalEngine,
)
from repro.inquery.matches import best_window, term_match_positions
from repro.simdisk import SimClock, SimDisk, SimFileSystem

CORPUS = [
    ["apple", "banana", "cherry", "apple", "date"],
    ["banana", "cherry", "banana", "apple"],
    ["cherry", "date", "apple", "banana", "cherry"],
]


def build():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    store = MnemeInvertedFile(fs)
    builder = IndexBuilder(fs, store, stem_fn=str)
    for doc_id, tokens in enumerate(CORPUS, start=1):
        builder.add_document(Document(doc_id, tokens=tokens))
    return builder.finalize()


def _poison(monkeypatch):
    """Make every relevant fast kernel entry point explode if reached."""
    import repro.fastpath.daat as fast_daat
    import repro.fastpath.windows as fast_windows

    def boom(*args, **kwargs):
        raise AssertionError("fast kernel invoked with the fast path disabled")

    monkeypatch.setattr(fast_daat, "score_streams", boom)
    monkeypatch.setattr(fast_windows, "match_counts_for_docs", boom)
    monkeypatch.setattr(fast_windows, "record_positions_for_doc", boom)
    monkeypatch.setattr(fast_windows, "best_window", boom)


def _run_everything():
    """One pass through every fast-path dispatch point."""
    index = build()
    DocumentAtATimeEngine(index, top_k=10).run_query("#sum( apple banana )")
    engine = RetrievalEngine(index, top_k=10)
    engine.run_query("#phrase( apple banana )")
    engine.run_query("#od3( apple cherry )")
    engine.run_query("#uw5( banana date )")
    term_match_positions(index, "#sum( apple banana )", 1)
    best_window(index, "#sum( apple banana )", 1, window=3)


def test_context_manager_disables_all_kernels(monkeypatch):
    _poison(monkeypatch)
    with use_fastpath(False):
        _run_everything()  # must not touch any poisoned kernel


def test_explicit_engine_flag_overrides_global(monkeypatch):
    import repro.fastpath.daat as fast_daat

    def boom(*args, **kwargs):
        raise AssertionError("fast kernel invoked despite use_fastpath=False")

    monkeypatch.setattr(fast_daat, "score_streams", boom)
    with use_fastpath(True):
        index = build()
        engine = DocumentAtATimeEngine(index, top_k=10, use_fastpath=False)
        engine.run_query("#sum( apple banana )")


def test_kernels_actually_dispatch_when_enabled():
    # Sanity check on the poison points themselves: with the fast path
    # on, the kernels must be reached — otherwise the kill-switch tests
    # above would pass vacuously.
    if not state.HAVE_NUMPY:
        pytest.skip("numpy unavailable")
    calls = []
    import repro.fastpath.daat as fast_daat

    original = fast_daat.score_streams

    def spy(*args, **kwargs):
        calls.append(True)
        return original(*args, **kwargs)

    fast_daat.score_streams = spy
    try:
        with use_fastpath(True):
            index = build()
            DocumentAtATimeEngine(index, top_k=10).run_query("#sum( apple )")
    finally:
        fast_daat.score_streams = original
    assert calls


def test_env_kill_switch_end_to_end():
    # REPRO_FASTPATH is read at import time, so the check needs a fresh
    # interpreter: with the variable set, the toggle must come up off
    # and the reference path must evaluate everything.
    program = (
        "import sys\n"
        "from repro.fastpath import state\n"
        "assert not state.enabled(), 'REPRO_FASTPATH=0 ignored'\n"
        "import repro.fastpath.daat as fd\n"
        "import repro.fastpath.windows as fw\n"
        "def boom(*a, **k):\n"
        "    raise AssertionError('fast kernel invoked under REPRO_FASTPATH=0')\n"
        "fd.score_streams = boom\n"
        "fw.match_counts_for_docs = boom\n"
        "fw.record_positions_for_doc = boom\n"
        "fw.best_window = boom\n"
        "from test_killswitch import _run_everything\n"
        "_run_everything()\n"
        "print('reference path OK')\n"
    )
    env = dict(os.environ, REPRO_FASTPATH="0")
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    here = os.path.dirname(__file__)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.abspath(src), here, env.get("PYTHONPATH", "")]
    )
    proc = subprocess.run(
        [sys.executable, "-c", program],
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "reference path OK" in proc.stdout
