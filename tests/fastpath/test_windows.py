"""Vectorized position-window kernels vs. the reference merges.

:func:`repro.fastpath.windows.match_count` must reproduce
:func:`repro.inquery.network._match_count` bit for bit — the phrase
branch's ``set()`` deduplication, the ordered/unordered branches'
duplicate counting, window size 1 — and
:func:`repro.fastpath.windows.best_window` must reproduce the
reference sliding scan in :mod:`repro.inquery.matches`, including its
first-maximum tie-breaking.  Checked over random position lists at the
kernel level, and end-to-end through the real index code paths.
"""

import pytest

pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from repro.fastpath import use_fastpath
from repro.fastpath.windows import best_window as best_window_fast
from repro.fastpath.windows import match_count as match_count_fast
from repro.inquery import Document, IndexBuilder, MnemeInvertedFile
from repro.inquery.matches import best_window, term_match_positions
from repro.inquery.network import _match_count
from repro.simdisk import SimClock, SimDisk, SimFileSystem

positions_st = st.lists(
    st.integers(min_value=0, max_value=30), min_size=0, max_size=12
)
# Duplicate-heavy lists: a tiny position range forces repeats.
dup_positions_st = st.lists(
    st.integers(min_value=0, max_value=5), min_size=1, max_size=10
)
lists_st = st.lists(positions_st, min_size=1, max_size=4)
window_st = st.integers(min_value=1, max_value=8)


# -- match_count vs. the reference position merge ---------------------------


@given(lists=lists_st, ordered=st.booleans(), window=window_st)
@settings(max_examples=300, deadline=None)
def test_match_count_matches_reference(lists, ordered, window):
    expected = _match_count([tuple(p) for p in lists], ordered, window)
    assert match_count_fast(lists, ordered, window) == expected


@given(lists=st.lists(dup_positions_st, min_size=1, max_size=3), ordered=st.booleans())
@settings(max_examples=200, deadline=None)
def test_match_count_duplicates_window_one(lists, ordered):
    # window=1 selects the exact-phrase branch when ordered — the one
    # place the reference deduplicates the first term's positions.
    expected = _match_count([tuple(p) for p in lists], ordered, 1)
    assert match_count_fast(lists, ordered, 1) == expected


def test_match_count_empty_list_is_zero():
    assert match_count_fast([[1, 2], []], ordered=True, window=1) == 0
    assert match_count_fast([[1, 2], []], ordered=False, window=5) == 0
    assert _match_count([(1, 2), ()], True, 1) == 0


# -- best_window vs. the reference sliding scan -----------------------------


def reference_best_window(by_term, window):
    # The reference scan from repro.inquery.matches, verbatim, so the
    # kernel can be fuzzed on inputs (duplicate positions) the indexed
    # path cannot produce.
    events = sorted(
        (position, term)
        for term, positions in by_term.items()
        for position in positions
    )
    if not events:
        return 0, window, 0
    best = (events[0][0], events[0][0] + window, 1)
    left = 0
    inside = {}
    for right, (position, term) in enumerate(events):
        inside[term] = inside.get(term, 0) + 1
        while events[left][0] < position - window + 1:
            left_term = events[left][1]
            inside[left_term] -= 1
            if not inside[left_term]:
                del inside[left_term]
            left += 1
        distinct = len(inside)
        if distinct > best[2]:
            start = events[left][0]
            best = (start, start + window, distinct)
    return best


by_term_st = st.dictionaries(
    st.sampled_from(["alpha", "beta", "gamma", "delta"]),
    st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=8),
    min_size=0,
    max_size=4,
)


@given(by_term=by_term_st, window=st.integers(min_value=1, max_value=12))
@settings(max_examples=300, deadline=None)
def test_best_window_matches_reference(by_term, window):
    assert best_window_fast(by_term, window) == reference_best_window(
        by_term, window
    )


@given(
    by_term=st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=8),
        min_size=1,
        max_size=3,
    )
)
@settings(max_examples=200, deadline=None)
def test_best_window_duplicates_window_one(by_term):
    # Duplicate positions and the degenerate one-token window.
    assert best_window_fast(by_term, 1) == reference_best_window(by_term, 1)


# -- end-to-end through the real index code paths ---------------------------

VOCAB = [f"t{i}" for i in range(6)]

corpus_st = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=30),
    min_size=1,
    max_size=8,
)


def build(corpus):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    store = MnemeInvertedFile(fs)
    builder = IndexBuilder(fs, store, stem_fn=str)
    for doc_id, tokens in enumerate(corpus, start=1):
        builder.add_document(Document(doc_id, tokens=tokens))
    return builder.finalize()


@given(
    corpus=corpus_st,
    terms=st.lists(st.sampled_from(VOCAB + ["zzz"]), min_size=1, max_size=4),
    window=st.integers(min_value=1, max_value=10),
    doc_id=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_matches_dispatch_identical(corpus, terms, window, doc_id):
    # The public helpers must return identical results with the fast
    # path on and off — real records, real storage accesses.
    index = build(corpus)
    query = "#sum( " + " ".join(terms) + " )"
    with use_fastpath(False):
        ref_positions = term_match_positions(index, query, doc_id)
        ref_window = best_window(index, query, doc_id, window=window)
    with use_fastpath(True):
        fast_positions = term_match_positions(index, query, doc_id)
        fast_window = best_window(index, query, doc_id, window=window)
    assert fast_positions == ref_positions
    assert fast_window == ref_window
