"""Unit tests for the simulated clock and cost model."""

import pytest

from repro.simdisk import CostModel, SimClock, TimeBreakdown


def test_clock_starts_at_zero():
    clock = SimClock()
    assert clock.time.wall_ms == 0.0
    assert clock.time.system_io_ms == 0.0


def test_charges_accumulate_in_their_buckets():
    clock = SimClock()
    clock.charge_user(5.0)
    clock.charge_system(2.0)
    clock.charge_io(10.0)
    assert clock.time.user_ms == 5.0
    assert clock.time.system_ms == 2.0
    assert clock.time.io_ms == 10.0


def test_wall_is_sum_of_buckets():
    clock = SimClock()
    clock.charge_user(1.0)
    clock.charge_system(2.0)
    clock.charge_io(3.0)
    assert clock.time.wall_ms == pytest.approx(6.0)


def test_system_io_excludes_user():
    clock = SimClock()
    clock.charge_user(100.0)
    clock.charge_io(3.0)
    clock.charge_system(4.0)
    assert clock.time.system_io_ms == pytest.approx(7.0)


def test_snapshot_is_independent_copy():
    clock = SimClock()
    clock.charge_user(1.0)
    snap = clock.snapshot()
    clock.charge_user(9.0)
    assert snap.user_ms == 1.0
    assert clock.time.user_ms == 10.0


def test_since_returns_delta():
    clock = SimClock()
    clock.charge_io(5.0)
    start = clock.snapshot()
    clock.charge_io(7.0)
    clock.charge_user(2.0)
    delta = clock.since(start)
    assert delta.io_ms == pytest.approx(7.0)
    assert delta.user_ms == pytest.approx(2.0)
    assert delta.system_ms == pytest.approx(0.0)


def test_reset_zeroes_time():
    clock = SimClock()
    clock.charge_system(4.0)
    clock.reset()
    assert clock.time.wall_ms == 0.0


def test_breakdown_subtraction():
    a = TimeBreakdown(user_ms=10, system_ms=5, io_ms=3)
    b = TimeBreakdown(user_ms=4, system_ms=1, io_ms=3)
    d = a - b
    assert (d.user_ms, d.system_ms, d.io_ms) == (6, 4, 0)


def test_cost_model_is_frozen():
    cost = CostModel()
    with pytest.raises(Exception):
        cost.syscall_ms = 99.0


def test_custom_cost_model_is_used():
    clock = SimClock(cost=CostModel(syscall_ms=42.0))
    assert clock.cost.syscall_ms == 42.0
