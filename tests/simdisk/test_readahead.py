"""Tests for sequential read-ahead in the FS cache."""

import pytest

from repro.simdisk import BLOCK_SIZE, SimClock, SimDisk, SimFileSystem


def make_fs(readahead):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=32, readahead_blocks=readahead)
    f = fs.create("data")
    f.write(0, bytes(range(256)) * (BLOCK_SIZE // 16))  # 16 blocks
    fs.chill()
    return fs, f


def test_sequential_reads_trigger_prefetch():
    fs, f = make_fs(readahead=4)
    f.read(0, BLOCK_SIZE)                     # block 0: no pattern yet
    f.read(BLOCK_SIZE, BLOCK_SIZE)            # block 1: sequential -> prefetch 2-5
    reads_after_pattern = fs.disk.stats.blocks_read
    f.read(2 * BLOCK_SIZE, 4 * BLOCK_SIZE)    # blocks 2-5: all prefetched
    assert fs.disk.stats.blocks_read == reads_after_pattern + 4
    # (the prefetch of 6-9 fired on the 2-5 read; nothing extra needed)


def test_prefetch_disabled_by_default():
    fs, f = make_fs(readahead=0)
    f.read(0, BLOCK_SIZE)
    f.read(BLOCK_SIZE, BLOCK_SIZE)
    reads = fs.disk.stats.blocks_read
    f.read(2 * BLOCK_SIZE, BLOCK_SIZE)
    assert fs.disk.stats.blocks_read == reads + 1  # genuine miss


def test_random_reads_do_not_prefetch():
    fs, f = make_fs(readahead=4)
    f.read(5 * BLOCK_SIZE, 10)
    f.read(0, 10)
    f.read(10 * BLOCK_SIZE, 10)
    # three random single-block reads, no prefetch fired
    assert fs.disk.stats.blocks_read == 3


def test_prefetch_stops_at_eof():
    fs, f = make_fs(readahead=8)
    f.read(13 * BLOCK_SIZE, BLOCK_SIZE)
    f.read(14 * BLOCK_SIZE, BLOCK_SIZE)  # sequential; only block 15 remains
    f.read(15 * BLOCK_SIZE, BLOCK_SIZE)  # already prefetched
    assert fs.disk.stats.blocks_read == 3


def test_interleaved_scan_costs_less_time_with_readahead():
    """Read-ahead pays when other I/O moves the head between reads:
    the prefetch burst rides one seek instead of seeking back per block."""
    results = {}
    for readahead in (0, 8):
        fs = SimFileSystem(
            SimDisk(SimClock()), cache_blocks=32, readahead_blocks=readahead
        )
        f = fs.create("data")
        f.write(0, bytes(range(256)) * (BLOCK_SIZE // 16))  # 16 blocks
        other = fs.create("other")
        other.write(0, b"x" * (4 * BLOCK_SIZE))
        fs.chill()
        start = fs.disk.clock.snapshot()
        for block in range(16):
            f.read(block * BLOCK_SIZE, BLOCK_SIZE)
            other.read((block % 4) * BLOCK_SIZE, 16)  # head moves away
        results[readahead] = fs.disk.clock.since(start).io_ms
    assert results[8] < results[0]


def test_contents_unaffected_by_readahead():
    fs0, f0 = make_fs(readahead=0)
    fs8, f8 = make_fs(readahead=8)
    for block in range(16):
        a = f0.read(block * BLOCK_SIZE, BLOCK_SIZE)
        b = f8.read(block * BLOCK_SIZE, BLOCK_SIZE)
        assert a == b
