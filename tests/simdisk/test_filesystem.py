"""Unit tests for the simulated file system layer."""

import pytest

from repro.errors import FileNotFoundInStoreError, FileSystemError
from repro.simdisk import BLOCK_SIZE, SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def fs():
    return SimFileSystem(SimDisk(SimClock()), cache_blocks=8)


def test_create_and_open(fs):
    f = fs.create("data")
    assert fs.open("data") is f
    assert fs.exists("data")
    assert fs.names() == ["data"]


def test_open_missing_raises(fs):
    with pytest.raises(FileNotFoundInStoreError):
        fs.open("ghost")


def test_write_read_roundtrip_small(fs):
    f = fs.create("data")
    f.write(0, b"hello world")
    assert f.read(0, 11) == b"hello world"
    assert f.size == 11


def test_write_read_roundtrip_spanning_blocks(fs):
    f = fs.create("data")
    payload = bytes(range(256)) * 100  # 25600 bytes, > 3 blocks
    f.write(0, payload)
    assert f.read(0, len(payload)) == payload
    # unaligned interior read spanning a block boundary
    assert f.read(BLOCK_SIZE - 10, 20) == payload[BLOCK_SIZE - 10:BLOCK_SIZE + 10]


def test_sparse_write_at_offset_reads_zero_gap(fs):
    f = fs.create("data")
    f.write(10000, b"xyz")
    assert f.size == 10003
    assert f.read(0, 4) == b"\x00" * 4


def test_read_past_eof_rejected(fs):
    f = fs.create("data")
    f.write(0, b"abc")
    with pytest.raises(FileSystemError):
        f.read(0, 4)


def test_zero_length_read_free(fs):
    f = fs.create("data")
    f.write(0, b"abc")
    before = f.stats.read_calls
    assert f.read(1, 0) == b""
    assert f.stats.read_calls == before


def test_negative_offset_rejected(fs):
    f = fs.create("data")
    with pytest.raises(FileSystemError):
        f.read(-1, 1)
    with pytest.raises(FileSystemError):
        f.write(-1, b"x")


def test_append_returns_offset(fs):
    f = fs.create("data")
    assert f.append(b"aaa") == 0
    assert f.append(b"bbb") == 3
    assert f.read(0, 6) == b"aaabbb"


def test_read_counts_accesses_and_bytes(fs):
    f = fs.create("data")
    f.write(0, b"x" * 100)
    f.read(0, 40)
    f.read(40, 60)
    assert f.stats.read_calls == 2
    assert f.stats.bytes_delivered == 100


def test_each_read_charges_a_syscall(fs):
    clock = fs.disk.clock
    f = fs.create("data")
    f.write(0, b"x" * 10)
    before = clock.time.system_ms
    f.read(0, 10)
    assert clock.time.system_ms - before >= clock.cost.syscall_ms


def test_fs_cache_absorbs_repeated_reads(fs):
    f = fs.create("data")
    f.write(0, b"x" * 100)
    fs.chill()
    reads0 = fs.disk.stats.blocks_read
    f.read(0, 100)
    first = fs.disk.stats.blocks_read - reads0
    f.read(0, 100)
    second = fs.disk.stats.blocks_read - reads0 - first
    assert first == 1
    assert second == 0  # served from FS cache


def test_chill_purges_fs_cache(fs):
    f = fs.create("data")
    f.write(0, b"x" * 100)
    f.read(0, 100)
    fs.chill()
    reads0 = fs.disk.stats.blocks_read
    f.read(0, 100)
    assert fs.disk.stats.blocks_read - reads0 == 1  # had to hit disk again


def test_chill_charges_io_time(fs):
    before = fs.disk.clock.time.io_ms
    fs.chill()
    assert fs.disk.clock.time.io_ms > before


def test_write_through_keeps_cache_consistent(fs):
    f = fs.create("data")
    f.write(0, b"old data")
    f.read(0, 8)            # cached
    f.write(0, b"new data")  # write-through must update cache
    assert f.read(0, 8) == b"new data"


def test_partial_block_overwrite_preserves_rest(fs):
    f = fs.create("data")
    f.write(0, b"a" * 100)
    f.write(10, b"B" * 5)
    expect = b"a" * 10 + b"B" * 5 + b"a" * 85
    assert f.read(0, 100) == expect


def test_truncate_shrinks_and_invalidates(fs):
    f = fs.create("data")
    f.write(0, b"x" * (BLOCK_SIZE * 2))
    f.truncate(5)
    assert f.size == 5
    with pytest.raises(FileSystemError):
        f.read(0, 6)
    with pytest.raises(FileSystemError):
        f.truncate(10)  # cannot grow


def test_interleaved_files_fragment_on_disk(fs):
    a = fs.create("a")
    b = fs.create("b")
    a.write(0, b"x" * BLOCK_SIZE)
    b.write(0, b"y" * BLOCK_SIZE)
    a.write(BLOCK_SIZE, b"x" * BLOCK_SIZE)
    # file "a" occupies disk blocks 0 and 2: reading it sequentially in file
    # space is non-sequential on disk.
    fs.chill()
    seq0 = fs.disk.stats.sequential_reads
    a.read(0, BLOCK_SIZE * 2)
    assert fs.disk.stats.sequential_reads == seq0  # no sequential transfers


def test_stats_delta(fs):
    f = fs.create("data")
    f.write(0, b"x" * 10)
    f.read(0, 10)
    before = f.stats.copy()
    f.read(0, 5)
    delta = f.stats - before
    assert delta.read_calls == 1
    assert delta.bytes_delivered == 5
