"""Unit tests for the LRU block cache."""

import pytest

from repro.simdisk import BlockCache


def test_get_miss_returns_none_and_counts():
    cache = BlockCache(4)
    assert cache.get("a") is None
    assert cache.stats.misses == 1
    assert cache.stats.hits == 0


def test_put_then_get_hits():
    cache = BlockCache(4)
    cache.put("a", b"1")
    assert cache.get("a") == b"1"
    assert cache.stats.hits == 1


def test_lru_eviction_order():
    cache = BlockCache(2)
    cache.put("a", b"1")
    cache.put("b", b"2")
    cache.get("a")          # "a" becomes most recent
    cache.put("c", b"3")    # evicts "b"
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.stats.evictions == 1


def test_put_refreshes_existing_entry():
    cache = BlockCache(2)
    cache.put("a", b"1")
    cache.put("b", b"2")
    cache.put("a", b"new")  # refresh, no eviction
    cache.put("c", b"3")    # evicts "b" (LRU), not "a"
    assert cache.get("a") == b"new"
    assert "b" not in cache


def test_zero_capacity_disables_caching():
    cache = BlockCache(0)
    cache.put("a", b"1")
    assert cache.get("a") is None
    assert len(cache) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        BlockCache(-1)


def test_pinned_entries_survive_eviction():
    cache = BlockCache(2)
    cache.put("a", b"1")
    cache.pin("a")
    cache.put("b", b"2")
    cache.put("c", b"3")  # must evict "b", not pinned "a"
    assert "a" in cache
    assert "b" not in cache


def test_pin_absent_key_raises():
    cache = BlockCache(2)
    with pytest.raises(KeyError):
        cache.pin("ghost")


def test_pins_nest():
    cache = BlockCache(1)
    cache.put("a", b"1")
    cache.pin("a")
    cache.pin("a")
    cache.unpin("a")
    assert cache.pinned("a")
    cache.unpin("a")
    assert not cache.pinned("a")


def test_all_pinned_allows_overflow_instead_of_deadlock():
    cache = BlockCache(1)
    cache.put("a", b"1")
    cache.pin("a")
    cache.put("b", b"2")  # nothing evictable; overflow tolerated
    assert "a" in cache and "b" in cache


def test_invalidate_removes_entry_and_pin():
    cache = BlockCache(2)
    cache.put("a", b"1")
    cache.pin("a")
    cache.invalidate("a")
    assert "a" not in cache
    assert not cache.pinned("a")


def test_clear_empties_cache():
    cache = BlockCache(4)
    cache.put("a", b"1")
    cache.put("b", b"2")
    cache.clear()
    assert len(cache) == 0


def test_peek_does_not_affect_lru_or_stats():
    cache = BlockCache(2)
    cache.put("a", b"1")
    cache.put("b", b"2")
    refs_before = cache.stats.references
    assert cache.peek("a") == b"1"
    assert cache.stats.references == refs_before
    cache.put("c", b"3")  # evicts "a": peek did not refresh it
    assert "a" not in cache


def test_hit_rate_computation():
    cache = BlockCache(4)
    cache.put("a", b"1")
    cache.get("a")
    cache.get("a")
    cache.get("x")
    assert cache.stats.hit_rate == pytest.approx(2 / 3)


def test_hit_rate_zero_when_no_references():
    assert BlockCache(4).stats.hit_rate == 0.0


def test_stats_delta():
    cache = BlockCache(4)
    cache.put("a", b"1")
    cache.get("a")
    before = cache.stats.copy()
    cache.get("a")
    cache.get("b")
    delta = cache.stats - before
    assert delta.hits == 1
    assert delta.misses == 1
