"""Tests for block-level I/O tracing."""

import pytest

from repro.simdisk import (
    AccessTracer,
    BLOCK_SIZE,
    SimClock,
    SimDisk,
    SimFileSystem,
)


@pytest.fixture()
def traced_disk():
    disk = SimDisk(SimClock())
    tracer = AccessTracer()
    disk.attach_tracer(tracer)
    disk.allocate(16)
    return disk, tracer


def test_records_reads_and_writes(traced_disk):
    disk, tracer = traced_disk
    disk.write_block(0, bytes(BLOCK_SIZE))
    disk.read_block(0)
    disk.read_block(1)
    assert tracer.reads == 2
    assert tracer.writes == 1
    assert [e.op for e in tracer.events] == ["write", "read", "read"]


def test_sequential_flag_matches_disk_model(traced_disk):
    disk, tracer = traced_disk
    disk.read_block(3)
    disk.read_block(4)   # sequential
    disk.read_block(10)  # seek
    flags = [e.sequential for e in tracer.events]
    assert flags == [False, True, False]
    assert tracer.sequential_reads == 1


def test_summary_counts(traced_disk):
    disk, tracer = traced_disk
    for block in (0, 1, 2, 0, 9):
        disk.read_block(block)
    summary = tracer.summary()
    assert summary.reads == 5
    assert summary.distinct_blocks_read == 4
    assert summary.rereads == 1
    assert summary.reread_fraction == pytest.approx(0.2)
    assert summary.sequential_fraction == pytest.approx(2 / 5)
    assert summary.max_seek == 9


def test_seek_histogram(traced_disk):
    disk, tracer = traced_disk
    for block in (0, 1, 2, 10, 11):
        disk.read_block(block)
    rows = dict(tracer.seek_histogram(buckets=(0, 1, 8)))
    assert rows["0"] == 0          # seeks: 1,1,8,1
    assert rows["1-7"] == 3
    assert rows[">= 8"] == 1


def test_reset(traced_disk):
    disk, tracer = traced_disk
    disk.read_block(0)
    tracer.reset()
    assert tracer.reads == 0
    assert tracer.events == []
    assert tracer.summary().reads == 0


def test_ring_buffer_bounds_events():
    disk = SimDisk(SimClock())
    tracer = AccessTracer(max_events=3)
    disk.attach_tracer(tracer)
    disk.allocate(10)
    for block in range(6):
        disk.read_block(block)
    assert len(tracer.events) == 3   # bounded
    assert tracer.reads == 6         # counters keep counting


def test_bad_max_events():
    with pytest.raises(ValueError):
        AccessTracer(max_events=0)


def test_tracer_consistent_with_disk_stats_on_full_system():
    """Integration: a traced query batch agrees with the disk counters."""
    from repro.core import cold_start, config_by_name, materialize
    from repro.core.prepared import prepare_collection
    from repro.inquery import RetrievalEngine
    from repro.synth import (
        CollectionProfile,
        QueryProfile,
        SyntheticCollection,
        generate_query_set,
    )

    collection = SyntheticCollection(CollectionProfile(
        name="trace", models="t", documents=400, mean_doc_length=120,
        doc_length_sigma=0.5, vocab_size=8000, seed=33,
    ))
    prepared = prepare_collection(collection)
    queries = generate_query_set(
        collection, QueryProfile(name="q", style="natural", n_queries=25,
                                 bias_alpha=1.3, seed=44)
    )
    system = materialize(prepared, config_by_name("mneme-nocache"))
    cold_start(system)
    tracer = AccessTracer()
    system.fs.disk.attach_tracer(tracer)
    reads_before = system.fs.disk.stats.blocks_read
    seq_before = system.fs.disk.stats.sequential_reads
    RetrievalEngine(system.index).run_batch(queries.queries)
    summary = tracer.summary()
    assert summary.reads == system.fs.disk.stats.blocks_read - reads_before
    assert summary.sequential_reads == (
        system.fs.disk.stats.sequential_reads - seq_before
    )
    assert summary.reads > 0
    assert summary.distinct_blocks_read <= summary.reads
    # The chill purged the FS cache, so the batch re-reads hot blocks.
    assert 0.0 <= summary.reread_fraction < 1.0
