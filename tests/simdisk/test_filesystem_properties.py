"""Property-based tests: the simulated file behaves like a byte array."""

from hypothesis import given, settings, strategies as st

from repro.simdisk import SimClock, SimDisk, SimFileSystem


write_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40000), st.binary(min_size=1, max_size=5000)),
    min_size=1,
    max_size=12,
)


@given(ops=write_ops)
@settings(max_examples=60, deadline=None)
def test_file_matches_bytearray_model(ops):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=4)
    f = fs.create("data")
    model = bytearray()
    for offset, data in ops:
        f.write(offset, data)
        if offset + len(data) > len(model):
            model.extend(b"\x00" * (offset + len(data) - len(model)))
        model[offset:offset + len(data)] = data
    assert f.size == len(model)
    assert f.read(0, len(model)) == bytes(model)


@given(ops=write_ops, cache_blocks=st.integers(min_value=0, max_value=6))
@settings(max_examples=40, deadline=None)
def test_contents_independent_of_cache_size(ops, cache_blocks):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=cache_blocks)
    f = fs.create("data")
    reference = SimFileSystem(SimDisk(SimClock()), cache_blocks=64).create("ref")
    for offset, data in ops:
        f.write(offset, data)
    ref = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    rf = ref.create("data")
    for offset, data in ops:
        rf.write(offset, data)
    fs.chill()
    assert f.read(0, f.size) == rf.read(0, rf.size)


@given(
    ops=write_ops,
    reads=st.lists(
        st.tuples(st.integers(min_value=0, max_value=40000), st.integers(min_value=0, max_value=3000)),
        max_size=8,
    ),
)
@settings(max_examples=40, deadline=None)
def test_reads_never_mutate_contents(ops, reads):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=4)
    f = fs.create("data")
    for offset, data in ops:
        f.write(offset, data)
    before = f.read(0, f.size)
    for offset, length in reads:
        if offset + length <= f.size:
            f.read(offset, length)
    assert f.read(0, f.size) == before
