"""Tests for disk image save/load (cross-process persistence)."""

import pytest

from repro.errors import StorageError
from repro.simdisk import (
    BLOCK_SIZE,
    SimClock,
    SimDisk,
    SimFileSystem,
    load_image,
    save_image,
)


@pytest.fixture()
def fs():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=16)
    a = fs.create("alpha")
    a.write(0, b"alpha contents " * 1000)
    b = fs.create("beta")
    b.write(0, b"beta " * 40)
    a.write(a.size, b"tail")  # interleave so layouts are non-trivial
    return fs


def test_roundtrip_contents(fs, tmp_path):
    path = tmp_path / "machine.img"
    size = save_image(fs, path)
    assert size > 0
    loaded = load_image(path)
    assert loaded.names() == fs.names()
    for name in fs.names():
        original = fs.open(name)
        copy = loaded.open(name)
        assert copy.size == original.size
        assert copy.read(0, copy.size) == original.read(0, original.size)


def test_roundtrip_preserves_physical_layout(fs, tmp_path):
    path = tmp_path / "machine.img"
    save_image(fs, path)
    loaded = load_image(path)
    for name in fs.names():
        assert loaded.open(name)._blocks == fs.open(name)._blocks
    assert loaded.disk.blocks_allocated == fs.disk.blocks_allocated


def test_loaded_machine_starts_cold(fs, tmp_path):
    path = tmp_path / "machine.img"
    fs.open("alpha").read(0, 100)  # warm original's cache
    save_image(fs, path)
    loaded = load_image(path)
    reads_before = loaded.disk.stats.blocks_read
    loaded.open("alpha").read(0, 100)
    assert loaded.disk.stats.blocks_read > reads_before  # cache was cold


def test_save_charges_no_simulated_time(fs, tmp_path):
    before = fs.disk.clock.time.wall_ms
    save_image(fs, tmp_path / "machine.img")
    assert fs.disk.clock.time.wall_ms == before


def test_bad_image_rejected(tmp_path):
    path = tmp_path / "junk.img"
    path.write_bytes(b"this is not an image at all")
    with pytest.raises(StorageError):
        load_image(path)


def test_truncated_image_rejected(fs, tmp_path):
    path = tmp_path / "machine.img"
    save_image(fs, path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - BLOCK_SIZE // 2])
    with pytest.raises(StorageError):
        load_image(path)


def test_index_survives_process_boundary(tmp_path):
    """End to end: build an index, image it, reopen, query."""
    from repro.inquery import (
        CollectionIndex,
        DocTable,
        Document,
        HashDictionary,
        IndexBuilder,
        MnemeInvertedFile,
        RetrievalEngine,
    )

    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    builder = IndexBuilder(fs, MnemeInvertedFile(fs), stem_fn=str)
    builder.add_document(Document(1, tokens=["persistent", "object", "store"]))
    builder.add_document(Document(2, tokens=["inverted", "file", "index"]))
    index = builder.finalize()
    index.save()
    path = tmp_path / "index.img"
    save_image(fs, path)

    # "Another process": everything rebuilt from the image alone.
    loaded_fs = load_image(path)
    store = MnemeInvertedFile(loaded_fs)
    reopened = CollectionIndex(
        fs=loaded_fs,
        dictionary=HashDictionary.load(loaded_fs.open("index.dict")),
        doctable=DocTable.load(loaded_fs.open("index.docs")),
        store=store,
        stats=index.stats,
        stopwords=frozenset(),
        stem_fn=str,
    )
    engine = RetrievalEngine(reopened)
    assert engine.run_query("object store").doc_ids()[0] == 1
    assert engine.run_query("inverted index").doc_ids()[0] == 2
