"""Unit tests for the simulated block device."""

import pytest

from repro.errors import BadBlockError, DiskFullError
from repro.simdisk import BLOCK_SIZE, SimClock, SimDisk


@pytest.fixture()
def disk():
    return SimDisk(SimClock())


def block_of(byte: int) -> bytes:
    return bytes([byte]) * BLOCK_SIZE


def test_allocate_is_monotonic(disk):
    assert disk.allocate() == 0
    assert disk.allocate(3) == 1
    assert disk.allocate() == 4
    assert disk.blocks_allocated == 5


def test_allocate_requires_positive_count(disk):
    with pytest.raises(ValueError):
        disk.allocate(0)


def test_write_then_read_roundtrip(disk):
    b = disk.allocate()
    disk.write_block(b, block_of(7))
    assert disk.read_block(b) == block_of(7)


def test_unwritten_block_reads_zeroes(disk):
    b = disk.allocate()
    assert disk.read_block(b) == bytes(BLOCK_SIZE)


def test_write_requires_exact_block_size(disk):
    b = disk.allocate()
    with pytest.raises(ValueError):
        disk.write_block(b, b"short")


def test_out_of_range_access_rejected(disk):
    with pytest.raises(ValueError):
        disk.read_block(0)
    disk.allocate()
    with pytest.raises(ValueError):
        disk.read_block(1)
    with pytest.raises(ValueError):
        disk.read_block(-1)


def test_read_counters_distinguish_sequential_and_random():
    clock = SimClock()
    disk = SimDisk(clock)
    disk.allocate(4)
    disk.read_block(0)  # random: head was nowhere
    disk.read_block(1)  # sequential
    disk.read_block(2)  # sequential
    disk.read_block(0)  # random again
    assert disk.stats.blocks_read == 4
    assert disk.stats.sequential_reads == 2
    assert disk.stats.random_reads == 2


def test_sequential_reads_charge_less_io_time():
    clock = SimClock()
    disk = SimDisk(clock)
    disk.allocate(2)
    disk.read_block(0)
    random_cost = clock.time.io_ms
    disk.read_block(1)
    sequential_cost = clock.time.io_ms - random_cost
    assert sequential_cost < random_cost


def test_io_time_goes_to_io_bucket_only():
    clock = SimClock()
    disk = SimDisk(clock)
    disk.allocate()
    disk.read_block(0)
    assert clock.time.io_ms > 0
    assert clock.time.user_ms == 0
    assert clock.time.system_ms == 0


def test_capacity_enforced():
    disk = SimDisk(SimClock(), capacity_blocks=2)
    disk.allocate(2)
    with pytest.raises(DiskFullError):
        disk.allocate()


def test_bytes_read_counter(disk):
    disk.allocate(2)
    disk.read_block(0)
    disk.read_block(1)
    assert disk.stats.bytes_read == 2 * BLOCK_SIZE


def test_stats_delta_subtraction(disk):
    disk.allocate(3)
    disk.read_block(0)
    before = disk.stats.copy()
    disk.read_block(1)
    disk.read_block(2)
    delta = disk.stats - before
    assert delta.blocks_read == 2


def test_corrupt_block_fails_reads_until_rewritten(disk):
    b = disk.allocate()
    disk.write_block(b, block_of(1))
    disk.corrupt_block(b)
    with pytest.raises(BadBlockError):
        disk.read_block(b)
    disk.write_block(b, block_of(2))
    assert disk.read_block(b) == block_of(2)


def test_peek_does_not_charge_time_or_stats(disk):
    b = disk.allocate()
    disk.write_block(b, block_of(9))
    reads_before = disk.stats.blocks_read
    io_before = disk.clock.time.io_ms
    assert disk.peek_block(b) == block_of(9)
    assert disk.stats.blocks_read == reads_before
    assert disk.clock.time.io_ms == io_before
