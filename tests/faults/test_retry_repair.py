"""Retry, backoff, checksum, and read-repair behavior of the Mneme read path."""

import pytest

from repro.errors import BadBlockError, ChecksumError, DiskFullError, ReadFailedError
from repro.faults import FaultEvent, FaultPlan, RetryPolicy
from repro.mneme import MnemeStore, RedoLog
from repro.simdisk import BLOCK_SIZE, SimClock, SimDisk, SimFileSystem


SEGMENT = bytes(range(256)) * 64  # 16 KB: spans two full blocks


def _mneme(with_wal=True, retry=None):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=8)
    store = MnemeStore(fs)
    wal = RedoLog(fs.create("wal")) if with_wal else None
    f = store.open_file("inv", wal=wal, retry=retry)
    offset = f.append_segment(SEGMENT, align=BLOCK_SIZE)
    return fs, f, offset


def _arm(fs, f, events):
    """Chill caches and attach a plan aimed at the main file's blocks."""
    fs.chill()
    plan = FaultPlan(events, eligible_blocks=set(f.main._blocks))
    fs.disk.attach_fault_plan(plan)
    return plan


def test_retry_policy_backoff_is_bounded_and_validated():
    policy = RetryPolicy(max_attempts=4, backoff_ms=2.0, multiplier=2.0)
    assert [policy.wait_before(n) for n in (1, 2, 3)] == [2.0, 4.0, 8.0]
    assert policy.max_retries == 3
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


def test_transient_fault_recovers_within_the_retry_budget():
    fs, f, offset = _mneme()
    plan = _arm(fs, f, [FaultEvent("transient-read", at_op=0, times=2)])
    io_before = fs.disk.clock.snapshot().io_ms

    assert f.read_segment(offset, len(SEGMENT)) == SEGMENT
    assert plan.stats.transient_reads == 2
    assert f.resilience.read_faults == 2
    assert f.resilience.retries == 2
    assert f.resilience.unrecovered_reads == 0
    # The bounded backoff was charged to the simulated clock.
    assert f.resilience.retry_wait_ms > 0
    assert fs.disk.clock.snapshot().io_ms - io_before >= f.resilience.retry_wait_ms


def test_stuck_sector_exhausts_retries_and_raises_read_failed():
    fs, f, offset = _mneme()
    _arm(fs, f, [FaultEvent("transient-read", at_op=0, times=f.retry.max_attempts)])

    with pytest.raises(ReadFailedError) as excinfo:
        f.read_segment(offset, len(SEGMENT))
    assert isinstance(excinfo.value, BadBlockError)  # engines catch the base
    assert f.resilience.unrecovered_reads == 1
    assert f.resilience.retries == f.retry.max_retries


def test_bit_flip_is_caught_by_checksum_and_repaired_from_the_wal():
    fs, f, offset = _mneme(with_wal=True)
    # Flip a bit inside the segment's first block.
    plan = _arm(fs, f, [FaultEvent("bit-flip", at_op=0, bit=(offset % BLOCK_SIZE + 100) * 8)])

    assert f.read_segment(offset, len(SEGMENT)) == SEGMENT
    assert plan.stats.bit_flips == 1
    assert f.resilience.checksum_failures == 1
    assert f.resilience.read_repairs == 1
    # Repair rewrote the segment: the at-rest corruption is healed.
    fs.chill()
    fs.disk.attach_fault_plan(None)
    assert f.read_segment(offset, len(SEGMENT)) == SEGMENT
    assert f.resilience.checksum_failures == 1  # no new failure


def test_bit_flip_without_a_wal_raises_checksum_error():
    fs, f, offset = _mneme(with_wal=False)
    _arm(fs, f, [FaultEvent("bit-flip", at_op=0, bit=(offset % BLOCK_SIZE + 100) * 8)])

    with pytest.raises(ChecksumError) as excinfo:
        f.read_segment(offset, len(SEGMENT))
    assert isinstance(excinfo.value, BadBlockError)
    assert f.resilience.unrecovered_reads == 1
    assert f.resilience.read_repairs == 0


def test_torn_write_is_detected_and_repaired_on_next_read():
    fs, f, offset = _mneme(with_wal=True)
    # Tear a segment rewrite: the plan is scoped to the main file, so
    # the WAL record (a different file) lands intact first, then the
    # main-file block write is torn.
    plan = _arm(fs, f, [FaultEvent("torn-write", at_op=0)])
    f.write_segment(offset, SEGMENT)
    assert plan.stats.torn_writes == 1

    fs.chill()  # drop the write-through cache's intact copy
    assert f.read_segment(offset, len(SEGMENT)) == SEGMENT
    assert f.resilience.checksum_failures >= 1
    assert f.resilience.read_repairs == 1


def test_latency_spike_charges_the_clock_but_returns_good_data():
    fs, f, offset = _mneme()
    fs.chill()
    baseline_start = fs.disk.clock.snapshot()
    assert f.read_segment(offset, len(SEGMENT)) == SEGMENT
    baseline_io = fs.disk.clock.since(baseline_start).io_ms

    plan = _arm(fs, f, [FaultEvent("read-latency", at_op=0, extra_ms=40.0)])
    start = fs.disk.clock.snapshot()
    assert f.read_segment(offset, len(SEGMENT)) == SEGMENT
    spiked_io = fs.disk.clock.since(start).io_ms
    assert plan.stats.read_latencies == 1
    assert spiked_io >= baseline_io + 40.0
    assert f.resilience.retries == 0  # success: no retry machinery involved


def test_scheduled_disk_full_aborts_allocation():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=8)
    fs.disk.attach_fault_plan(FaultPlan([FaultEvent("disk-full", at_op=1)]))
    f = fs.create("victim")
    f.write(0, b"x")  # first allocation passes
    with pytest.raises(DiskFullError):
        f.write(BLOCK_SIZE, b"x")  # second allocation is refused


def test_resilience_stats_delta_arithmetic():
    fs, f, offset = _mneme()
    before = f.resilience.copy()
    _arm(fs, f, [FaultEvent("transient-read", at_op=0)])
    f.read_segment(offset, len(SEGMENT))
    delta = f.resilience - before
    assert delta.read_faults == 1 and delta.retries == 1
    assert delta.as_dict()["read_faults"] == 1
