"""The chaos harness's contracts, exercised end to end on a tiny build."""

from repro.bench.chaos import DEFAULT_MIX, chaos_profile


def test_chaos_contracts_hold_on_the_tiny_collection(faulty_prepared, faulty_queries):
    report = chaos_profile(
        faulty_prepared, [faulty_queries], seed=1337, config_name="mneme-linked"
    )
    assert report["violations"] == []
    assert report["ok"]
    # The run really injected something, degraded cleanly, and healed.
    assert sum(report["faulted"]["faults"].values()) > 0
    assert report["faulted"]["resilience"]["retries"] >= 1
    assert report["after_clear"]["identical_to_baseline"]
    assert report["disk_full"] == "clean DiskFullError"
    assert report["horizon"]["read_ops"] > 0


def test_chaos_reports_differ_across_seeds(faulty_prepared, faulty_queries):
    a = chaos_profile(faulty_prepared, [faulty_queries], seed=1)
    b = chaos_profile(faulty_prepared, [faulty_queries], seed=2)
    assert a["ok"] and b["ok"]
    # Different seeds draw different schedules (with overwhelming
    # probability for this horizon); both must still satisfy the
    # contracts.  Equal counters are tolerated, equal *schedules* are
    # not observable here, so just sanity-check the shape.
    assert set(DEFAULT_MIX) <= {
        "transient_reads", "stuck_reads", "bit_flips",
        "latency_spikes", "torn_writes",
    }
