"""Fixtures: one small WAL-backed linked-Mneme system per test session."""

import pytest

from repro.core import config_by_name, materialize, prepare_collection
from repro.synth import (
    CollectionProfile,
    QueryProfile,
    SyntheticCollection,
    generate_query_set,
)

FAULTY = CollectionProfile(
    name="tiny-faults", models="test", documents=250, mean_doc_length=70,
    doc_length_sigma=0.5, vocab_size=3500, seed=17,
)


@pytest.fixture(scope="session")
def faulty_collection():
    return SyntheticCollection(FAULTY)


@pytest.fixture(scope="session")
def faulty_prepared(faulty_collection):
    return prepare_collection(faulty_collection)


@pytest.fixture(scope="session")
def faulty_queries(faulty_collection):
    return generate_query_set(
        faulty_collection,
        QueryProfile(name="faults-qs", style="natural", n_queries=10,
                     mean_terms=4, seed=23),
    )


@pytest.fixture()
def wal_system(faulty_prepared):
    """A fresh WAL-backed linked-Mneme build (per test: plans mutate it)."""
    return materialize(
        faulty_prepared, config_by_name("mneme-linked", use_wal=True)
    )
