"""Unit tests for deterministic fault plans."""

import pytest

from repro.faults import FaultEvent, FaultPlan, enabled, set_enabled, use_faults


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent("no-such-kind", at_op=0)
    with pytest.raises(ValueError):
        FaultEvent("transient-read", at_op=-1)
    with pytest.raises(ValueError):
        FaultEvent("transient-read", at_op=0, times=0)


def test_probe_plan_counts_eligible_ops_per_channel():
    plan = FaultPlan(eligible_blocks={1, 2})
    plan.observe_read(1)
    plan.observe_read(2)
    plan.observe_read(99)   # not eligible: not counted
    plan.observe_write(1)
    plan.observe_alloc()    # allocs have no block, always eligible
    assert plan.ops == {"read": 2, "write": 1, "alloc": 1}
    assert plan.stats.total == 0


def test_event_fires_at_exact_eligible_op():
    plan = FaultPlan([FaultEvent("transient-read", at_op=2)])
    assert plan.observe_read(10) is None
    assert plan.observe_read(11) is None
    fault = plan.observe_read(12)
    assert fault is not None and fault.kind == "transient-read"
    assert fault.bound_block == 12
    assert plan.stats.transient_reads == 1
    assert plan.exhausted


def test_sticky_event_refires_only_on_its_bound_block():
    plan = FaultPlan([FaultEvent("transient-read", at_op=0, times=3)])
    first = plan.observe_read(7)
    assert first is not None and first.bound_block == 7
    # A different block does not consume the sticky budget.
    assert plan.observe_read(8) is None
    # Re-reads of the stuck block keep failing until the budget is spent.
    assert plan.observe_read(7) is not None
    assert plan.observe_read(7) is not None
    assert plan.observe_read(7) is None
    assert plan.stats.transient_reads == 3


def test_clear_drops_pending_firings():
    plan = FaultPlan([
        FaultEvent("transient-read", at_op=0, times=2),
        FaultEvent("torn-write", at_op=5),
    ])
    plan.observe_read(1)
    assert plan.unfired == 2  # one sticky firing + the torn write
    assert plan.clear() == 2
    assert plan.exhausted
    assert plan.observe_read(1) is None  # the sticky remainder is gone


def test_seeded_plans_are_deterministic_and_distinct():
    kwargs = dict(
        read_ops=100, write_ops=50, transient_reads=2, stuck_reads=1,
        bit_flips=2, latency_spikes=1, torn_writes=2,
    )
    a = FaultPlan.seeded(42, **kwargs)
    b = FaultPlan.seeded(42, **kwargs)
    c = FaultPlan.seeded(43, **kwargs)
    schedule = lambda plan: [  # noqa: E731
        (e.kind, e.at_op, e.times, e.bit) for e in plan.events
    ]
    assert schedule(a) == schedule(b)
    assert schedule(a) != schedule(c)
    assert len(a.events) == 8
    # No two events contend for the same operation slot on a channel.
    read_slots = [e.at_op for e in a.events if e.channel == "read"]
    assert len(read_slots) == len(set(read_slots))


def test_seeded_stuck_reads_exceed_the_retry_budget():
    plan = FaultPlan.seeded(
        7, read_ops=10, stuck_reads=1, retry_attempts=4,
    )
    (event,) = plan.events
    assert event.times == 4  # every attempt fails -> the reader gives up


def test_kill_switch_disables_counting_and_firing():
    plan = FaultPlan([FaultEvent("transient-read", at_op=0)])
    previous = set_enabled(False)
    try:
        assert not enabled()
        assert plan.observe_read(1) is None
        assert plan.ops["read"] == 0
    finally:
        set_enabled(previous)
    with use_faults(True):
        assert plan.observe_read(1) is not None


def test_seeded_scales_down_when_horizon_is_small():
    plan = FaultPlan.seeded(3, read_ops=2, transient_reads=10)
    assert len(plan.events) == 2
