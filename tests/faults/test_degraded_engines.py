"""Degraded-mode query serving: unreadable terms skip, queries never die."""

import pytest

from repro.core.metrics import cold_start, measure_run
from repro.faults import FaultEvent, FaultPlan
from repro.inquery import DocumentAtATimeEngine, RetrievalEngine
from repro.inquery.query import parse_query, query_terms


def _dead_sector_plan(system, at_op=0):
    """A sector that never recovers, aimed at the inverted file."""
    return FaultPlan(
        [FaultEvent("transient-read", at_op=at_op, times=10_000)],
        eligible_blocks=set(system.index.store.mfile.main._blocks),
    )


def _multi_term_query(queries):
    for query in queries:
        if len(list(query_terms(parse_query(query)))) >= 3:
            return query
    raise AssertionError("fixture query set has no multi-term query")


def test_taat_degrades_instead_of_raising(wal_system, faulty_queries):
    query = _multi_term_query(faulty_queries.queries)
    engine = RetrievalEngine(wal_system.index, top_k=20)

    cold_start(wal_system)
    clean = engine.run_query(query)
    assert not clean.degraded
    assert clean.terms_failed == 0
    assert clean.completeness == 1.0

    cold_start(wal_system)
    wal_system.fs.disk.attach_fault_plan(_dead_sector_plan(wal_system))
    degraded = engine.run_query(query)  # must not raise
    wal_system.fs.disk.attach_fault_plan(None)

    assert degraded.degraded
    assert degraded.terms_failed >= 1
    assert degraded.terms_attempted >= degraded.terms_failed
    assert 0.0 <= degraded.completeness < 1.0
    # The surviving terms still produced a ranking.
    assert degraded.ranking


def test_daat_degrades_at_stream_creation(wal_system, faulty_queries):
    query = _multi_term_query(faulty_queries.queries)
    flat = "#sum( " + " ".join(query_terms(parse_query(query))) + " )"
    engine = DocumentAtATimeEngine(wal_system.index, top_k=20)

    cold_start(wal_system)
    clean = engine.run_query(flat)
    assert not clean.degraded and clean.completeness == 1.0

    cold_start(wal_system)
    wal_system.fs.disk.attach_fault_plan(_dead_sector_plan(wal_system))
    degraded = engine.run_query(flat)  # must not raise
    wal_system.fs.disk.attach_fault_plan(None)

    assert degraded.degraded
    assert degraded.terms_failed >= 1
    assert degraded.completeness < 1.0
    assert degraded.ranking


def test_mid_stream_failure_keeps_partial_evidence():
    """A chunk chain dying mid-stream ends that term early, not the query.

    Stream-level: the fixture collection's records fit in one chunk, so
    the mid-refill path is driven directly — the wrapper must convert
    the error into a clean early end after the first chunk's postings.
    """
    from repro.errors import BadBlockError
    from repro.inquery import ChunkedRecordStream, FaultTolerantStream, encode_record

    def chunks():
        yield encode_record([(1, (4, 9)), (2, (3,))])
        raise BadBlockError("chunk chain went dark")

    failures = []
    stream = FaultTolerantStream(ChunkedRecordStream(chunks()), failures.append)
    postings = list(stream)  # must not raise
    assert [doc for doc, _positions in postings] == [1, 2]
    assert len(failures) == 1
    assert stream.failed
    assert stream.resident_bytes == 0


def test_degraded_queries_surface_in_run_metrics(wal_system, faulty_queries):
    wal_system.fs.disk.attach_fault_plan(_dead_sector_plan(wal_system))
    metrics = measure_run(
        wal_system, faulty_queries.queries, query_set_name="faults-qs"
    )
    wal_system.fs.disk.attach_fault_plan(None)
    assert metrics.degraded_queries >= 1
    assert metrics.terms_failed >= 1
    assert len(metrics.results) == len(faulty_queries.queries)


def test_fault_free_run_is_identical_with_wrappers_in_place(wal_system, faulty_queries):
    """The fault-tolerant plumbing is invisible when nothing fails."""
    engine = DocumentAtATimeEngine(wal_system.index, top_k=20)
    for query in faulty_queries.queries:
        flat = "#sum( " + " ".join(query_terms(parse_query(query))) + " )"
        result = engine.run_query(flat)
        assert not result.degraded
        assert result.terms_failed == 0
