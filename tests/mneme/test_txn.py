"""Tests for transactions: atomicity, isolation, durability, locking."""

import pytest

from repro.errors import ObjectNotFoundError
from repro.mneme import (
    EXCLUSIVE,
    LockConflictError,
    LockManager,
    MediumObjectPool,
    MnemeStore,
    RedoLog,
    SHARED,
    SmallObjectPool,
    TransactionAborted,
    TransactionManager,
    recover,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def setup():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=128)
    store = MnemeStore(fs)
    wal = RedoLog(fs.create("inv.wal"))
    mfile = store.open_file("inv", wal=wal)
    mfile.create_pool(1, SmallObjectPool)
    mfile.create_pool(2, MediumObjectPool)
    mfile.load()
    manager = TransactionManager(mfile)
    return fs, mfile, manager, wal


class TestLockManager:
    def test_shared_locks_compatible(self):
        locks = LockManager()
        locks.acquire(1, 10, SHARED)
        locks.acquire(2, 10, SHARED)
        assert set(locks.holding(1)) == {10}
        assert set(locks.holding(2)) == {10}

    def test_exclusive_conflicts(self):
        locks = LockManager()
        locks.acquire(1, 10, EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(2, 10, SHARED)
        with pytest.raises(LockConflictError):
            locks.acquire(2, 10, EXCLUSIVE)
        assert locks.conflicts == 2

    def test_reacquire_and_upgrade(self):
        locks = LockManager()
        locks.acquire(1, 10, SHARED)
        locks.acquire(1, 10, SHARED)
        locks.acquire(1, 10, EXCLUSIVE)  # sole holder upgrades
        with pytest.raises(LockConflictError):
            locks.acquire(2, 10, SHARED)

    def test_upgrade_blocked_by_other_reader(self):
        locks = LockManager()
        locks.acquire(1, 10, SHARED)
        locks.acquire(2, 10, SHARED)
        with pytest.raises(LockConflictError):
            locks.acquire(1, 10, EXCLUSIVE)

    def test_release_all(self):
        locks = LockManager()
        locks.acquire(1, 10, EXCLUSIVE)
        locks.acquire(1, 11, SHARED)
        locks.release_all(1)
        assert locks.holding(1) == []
        locks.acquire(2, 10, EXCLUSIVE)  # now free


class TestTransactions:
    def test_commit_applies_writes(self, setup):
        _fs, mfile, manager, _wal = setup
        oid = mfile.pool(2).create(b"before" * 10)
        mfile.flush()
        txn = manager.begin()
        txn.write(oid, b"after!" * 10)
        assert mfile.fetch(oid) == b"before" * 10  # not yet visible
        txn.commit()
        assert mfile.fetch(oid) == b"after!" * 10
        assert manager.committed == 1

    def test_abort_discards_writes(self, setup):
        _fs, mfile, manager, _wal = setup
        oid = mfile.pool(2).create(b"keep" * 10)
        mfile.flush()
        txn = manager.begin()
        txn.write(oid, b"lost" * 10)
        txn.abort()
        assert mfile.fetch(oid) == b"keep" * 10
        assert manager.aborted == 1

    def test_read_sees_own_writes(self, setup):
        _fs, mfile, manager, _wal = setup
        oid = mfile.pool(2).create(b"v1" * 10)
        mfile.flush()
        with manager.begin() as txn:
            txn.write(oid, b"v2" * 10)
            assert txn.read(oid) == b"v2" * 10

    def test_abort_undoes_creates(self, setup):
        _fs, mfile, manager, _wal = setup
        txn = manager.begin()
        oid = txn.create(2, b"ghost" * 10)
        txn.abort()
        with pytest.raises(ObjectNotFoundError):
            mfile.fetch(oid)

    def test_commit_keeps_creates(self, setup):
        _fs, mfile, manager, _wal = setup
        with manager.begin() as txn:
            oid = txn.create(1, b"new")
        assert mfile.fetch(oid) == b"new"

    def test_lost_update_prevented(self, setup):
        _fs, mfile, manager, _wal = setup
        oid = mfile.pool(2).create(b"balance=100" + b" " * 20)
        mfile.flush()
        t1 = manager.begin()
        t2 = manager.begin()
        t1.write(oid, b"balance=150" + b" " * 20)
        with pytest.raises(LockConflictError):
            t2.write(oid, b"balance=200" + b" " * 20)
        assert t2.state == "aborted"  # no-wait policy aborted it
        t1.commit()
        assert mfile.fetch(oid).startswith(b"balance=150")

    def test_readers_share(self, setup):
        _fs, mfile, manager, _wal = setup
        oid = mfile.pool(2).create(b"shared" * 10)
        mfile.flush()
        t1 = manager.begin()
        t2 = manager.begin()
        assert t1.read(oid) == t2.read(oid)
        t1.commit()
        t2.commit()

    def test_writer_blocks_reader(self, setup):
        _fs, mfile, manager, _wal = setup
        oid = mfile.pool(2).create(b"data" * 10)
        mfile.flush()
        t1 = manager.begin()
        t1.write(oid, b"new!" * 10)
        t2 = manager.begin()
        with pytest.raises(LockConflictError):
            t2.read(oid)
        t1.commit()
        # A fresh transaction sees the committed value.
        with manager.begin() as t3:
            assert t3.read(oid) == b"new!" * 10

    def test_locks_released_at_commit(self, setup):
        _fs, mfile, manager, _wal = setup
        oid = mfile.pool(2).create(b"x" * 20)
        mfile.flush()
        t1 = manager.begin()
        t1.write(oid, b"y" * 20)
        t1.commit()
        with manager.begin() as t2:
            t2.write(oid, b"z" * 20)
        assert mfile.fetch(oid) == b"z" * 20

    def test_finished_transaction_unusable(self, setup):
        _fs, mfile, manager, _wal = setup
        oid = mfile.pool(2).create(b"x" * 20)
        mfile.flush()
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionAborted):
            txn.read(oid)
        with pytest.raises(TransactionAborted):
            txn.write(oid, b"n" * 20)

    def test_context_manager_aborts_on_exception(self, setup):
        _fs, mfile, manager, _wal = setup
        oid = mfile.pool(2).create(b"safe" * 10)
        mfile.flush()
        with pytest.raises(RuntimeError):
            with manager.begin() as txn:
                txn.write(oid, b"oops" * 10)
                raise RuntimeError("boom")
        assert mfile.fetch(oid) == b"safe" * 10

    def test_committed_writes_survive_crash(self, setup):
        _fs, mfile, manager, wal = setup
        oid = mfile.pool(2).create(b"v1" * 30)
        mfile.flush()
        with manager.begin() as txn:
            txn.write(oid, b"v2" * 30)
        image = mfile.main.read(0, mfile.main.size)
        # Crash: lose the main file body, replay the redo log.
        mfile.main.write(16, b"\x00" * (mfile.main.size - 16))
        recover(wal, mfile.main)
        assert mfile.main.read(0, mfile.main.size) == image
        mfile.drop_user_caches()
        assert mfile.fetch(oid) == b"v2" * 30
