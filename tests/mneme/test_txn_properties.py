"""Property tests: interleaved transactions are equivalent to a serial order.

With strict two-phase locking and a no-wait policy, every pair of
transactions that both commit must be serializable.  The test interleaves
two transactions' scripted operations in a random order; whichever
transactions survive to commit must leave the store in a state some
serial execution of exactly those transactions would produce.
"""

from hypothesis import given, settings, strategies as st

from repro.mneme import (
    LockConflictError,
    MediumObjectPool,
    MnemeStore,
    TransactionAborted,
    TransactionManager,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem

N_OBJECTS = 4


def build():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    store = MnemeStore(fs)
    mfile = store.open_file("inv")
    mfile.create_pool(2, MediumObjectPool)
    mfile.load()
    oids = [mfile.pool(2).create(f"init-{i}".encode() + b" " * 20) for i in range(N_OBJECTS)]
    mfile.flush()
    return mfile, oids


# A step: (transaction index, op, object index)
steps_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=N_OBJECTS - 1),
    ),
    min_size=1,
    max_size=12,
)


def apply_serially(initial, committed_scripts):
    """State after running the committed scripts one after another."""
    state = dict(initial)
    for txn_index, script in committed_scripts:
        for op, obj in script:
            if op == "write":
                state[obj] = f"txn{txn_index}-obj{obj}".encode() + b" " * 10
    return state


@given(steps=steps_st)
@settings(max_examples=40, deadline=None)
def test_committed_transactions_serializable(steps):
    mfile, oids = build()
    initial = {i: mfile.fetch(oid) for i, oid in enumerate(oids)}
    manager = TransactionManager(mfile)
    txns = [manager.begin(), manager.begin()]
    scripts = [[], []]  # executed ops per transaction
    alive = [True, True]

    for txn_index, op, obj in steps:
        if not alive[txn_index]:
            continue
        txn = txns[txn_index]
        try:
            if op == "read":
                txn.read(oids[obj])
            else:
                txn.write(
                    oids[obj], f"txn{txn_index}-obj{obj}".encode() + b" " * 10
                )
            scripts[txn_index].append((op, obj))
        except (LockConflictError, TransactionAborted):
            alive[txn_index] = False

    committed = []
    for txn_index, txn in enumerate(txns):
        if alive[txn_index]:
            txn.commit()
            committed.append((txn_index, scripts[txn_index]))

    final = {i: mfile.fetch(oid) for i, oid in enumerate(oids)}

    # The final state must match SOME serial order of the committed txns.
    import itertools

    candidates = [
        apply_serially(initial, order)
        for order in itertools.permutations(committed)
    ] or [initial]
    assert final in candidates

    # Locks are fully released.
    assert manager.locks.holding(txns[0].txn_id) == []
    assert manager.locks.holding(txns[1].txn_id) == []
    assert manager.committed + manager.aborted == 2


@given(steps=steps_st)
@settings(max_examples=30, deadline=None)
def test_aborted_transactions_leave_no_trace(steps):
    mfile, oids = build()
    initial = {i: mfile.fetch(oid) for i, oid in enumerate(oids)}
    manager = TransactionManager(mfile)
    txn = manager.begin()
    for _t, op, obj in steps:
        try:
            if op == "read":
                txn.read(oids[obj])
            else:
                txn.write(oids[obj], b"staged" + b" " * 20)
        except TransactionAborted:
            break
    txn.abort()
    final = {i: mfile.fetch(oid) for i, oid in enumerate(oids)}
    assert final == initial
