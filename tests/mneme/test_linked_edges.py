"""Edge cases for linked objects and forward-layout guarantees."""

import pytest

from repro.mneme import (
    ChunkedLargeObjectPool,
    MnemeStore,
    append_linked,
    chunk_ids,
    read_linked,
    write_linked,
    write_linked_parts,
)
from repro.errors import MnemeError
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def pool():
    store = MnemeStore(SimFileSystem(SimDisk(SimClock()), cache_blocks=64))
    f = store.open_file("lnk")
    p = f.create_pool(3, ChunkedLargeObjectPool)
    f.load()
    return p


def test_chunks_laid_out_head_first(pool):
    """Forward layout: chunk ids ascend along the chain, so file offsets
    ascend too (ids are allocated in creation order)."""
    head = write_linked(pool, b"z" * 50000, chunk_bytes=10000)
    ids = chunk_ids(pool, head)
    assert ids == sorted(ids)


def test_segments_ascend_in_file(pool):
    head = write_linked(pool, b"z" * 50000, chunk_bytes=10000)
    pool.flush()
    ids = chunk_ids(pool, head)
    offsets = []
    for oid in ids:
        ordinal = pool._ordinal_of(oid)
        (seg_ordinal,) = pool._omap.get(ordinal)
        offset, _length = pool._segs.get(seg_ordinal)
        offsets.append(offset)
    assert offsets == sorted(offsets)


def test_write_linked_parts_empty_rejected(pool):
    with pytest.raises(MnemeError):
        write_linked_parts(pool, [])


def test_single_empty_part(pool):
    head = write_linked_parts(pool, [b""])
    assert read_linked(pool, head) == b""


def test_parts_of_wildly_different_sizes(pool):
    parts = [b"a", b"b" * 70000, b"", b"c" * 3]
    head = write_linked_parts(pool, parts)
    assert read_linked(pool, head) == b"".join(parts)
    assert len(chunk_ids(pool, head)) == 4


def test_append_to_single_chunk_repeatedly(pool):
    head = write_linked(pool, b"", chunk_bytes=64)
    expect = b""
    for i in range(10):
        piece = bytes([65 + i]) * 20
        append_linked(pool, head, piece, chunk_bytes=64)
        expect += piece
    assert read_linked(pool, head) == expect


def test_prefix_read_budget_exact_boundary(pool):
    head = write_linked(pool, b"0123456789" * 100, chunk_bytes=250)
    assert read_linked(pool, head, max_bytes=250) == (b"0123456789" * 100)[:250]
    assert read_linked(pool, head, max_bytes=0) == b""


def test_reopen_preserves_chain(pool):
    head = write_linked(pool, b"persist" * 1000, chunk_bytes=1500)
    pool.file.flush()
    store2 = MnemeStore(pool.file.fs)
    f2 = store2.open_file("lnk")
    p2 = f2.create_pool(3, ChunkedLargeObjectPool)
    f2.load()
    assert read_linked(p2, head) == b"persist" * 1000
