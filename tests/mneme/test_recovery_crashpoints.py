"""Exhaustive crash-point tests for redo-log recovery.

A crash can truncate the write-ahead log at *any* byte: exactly between
records, inside a record header, or inside a payload.  These tests
enumerate every cut position of a multi-record log and assert the
recovery invariant at each one: :meth:`RedoLog.records` returns exactly
the longest complete prefix of records, flags ``torn_tail`` iff the cut
is not on a record boundary, and :func:`recover` replays that prefix —
no more, no less — then checkpoints.
"""

import pytest

from repro.mneme import RedoLog, recover
from repro.mneme.recovery import _REC
from repro.simdisk import SimClock, SimDisk, SimFileSystem

#: Payload sizes chosen to cross interesting shapes: tiny, odd-sized,
#: empty, and larger-than-header.
PAYLOADS = (b"alpha", b"z", b"", b"0123456789" * 7, b"tail-record")


def _fresh_fs():
    return SimFileSystem(SimDisk(SimClock()), cache_blocks=128)


def _build_log_image():
    """One WAL with every payload, plus its record boundaries and targets."""
    fs = _fresh_fs()
    log = RedoLog(fs.create("wal"))
    boundaries = [0]
    targets = []
    offset = 0
    for payload in PAYLOADS:
        log.log_write(offset, payload)
        targets.append((offset, payload))
        offset += max(len(payload), 1)
        boundaries.append(boundaries[-1] + _REC.size + len(payload))
    image = log._file.read(0, log.size)
    return image, boundaries, targets


IMAGE, BOUNDARIES, TARGETS = _build_log_image()


def _expected_prefix(cut: int):
    """Records fully contained in the first ``cut`` bytes of the log."""
    complete = 0
    while complete < len(TARGETS) and BOUNDARIES[complete + 1] <= cut:
        complete += 1
    return TARGETS[:complete]


@pytest.mark.parametrize("cut", range(len(IMAGE) + 1))
def test_every_cut_position_recovers_the_complete_prefix(cut):
    fs = _fresh_fs()
    wal_file = fs.create("wal")
    if cut:
        wal_file.write(0, IMAGE[:cut])
    log = RedoLog(wal_file)

    expected = _expected_prefix(cut)
    records, torn = log.records()
    assert records == expected
    assert torn == (cut not in BOUNDARIES)

    # Replay onto a main file large enough for every expected target.
    main = fs.create("main")
    main.write(0, b"\x00" * 128)
    report = recover(log, main)
    assert report.replayed == len(expected)
    assert report.bytes_replayed == sum(len(p) for _o, p in expected)
    assert report.torn_tail == (cut not in BOUNDARIES)
    for offset, payload in expected:
        assert main.read(offset, len(payload)) == payload

    # Recovery checkpointed: the log is empty and a rerun replays nothing.
    assert log.size == 0
    again = recover(log, main)
    assert again.replayed == 0 and not again.torn_tail


def test_mid_log_magic_corruption_stops_the_replay():
    """A corrupt *interior* header ends trust at that record, not at EOF."""
    fs = _fresh_fs()
    wal_file = fs.create("wal")
    wal_file.write(0, IMAGE)
    # Stomp the magic of the third record.
    wal_file.write(BOUNDARIES[2], b"XXXX")
    records, torn = RedoLog(wal_file).records()
    assert records == TARGETS[:2]
    assert torn


def test_mid_log_payload_corruption_stops_the_replay():
    fs = _fresh_fs()
    wal_file = fs.create("wal")
    wal_file.write(0, IMAGE)
    # Flip a byte inside the first record's payload (after its header).
    wal_file.write(BOUNDARIES[0] + _REC.size, b"\xff")
    records, torn = RedoLog(wal_file).records()
    assert records == []
    assert torn


def test_length_field_pointing_past_eof_is_a_torn_tail():
    """A header whose length overruns the file must not read garbage."""
    fs = _fresh_fs()
    wal_file = fs.create("wal")
    log = RedoLog(wal_file)
    log.log_write(0, b"ok")
    size_before = log.size
    log.log_write(2, b"x" * 50)
    # Keep the second header but only part of its payload.
    wal_file.truncate(size_before + _REC.size + 10)
    records, torn = RedoLog(wal_file).records()
    assert records == [(0, b"ok")]
    assert torn
