"""Exhaustive crash-point tests for redo-log recovery.

A crash can truncate the write-ahead log at *any* byte: exactly between
records, inside a record header, or inside a payload.  These tests
enumerate every cut position of a multi-record log and assert the
recovery invariant at each one: :meth:`RedoLog.records` returns exactly
the longest complete prefix of records, flags ``torn_tail`` iff the cut
is not on a record boundary, and :func:`recover` replays that prefix —
no more, no less — then checkpoints.
"""

import pytest

from repro.mneme import RedoLog, recover
from repro.mneme.recovery import _REC
from repro.simdisk import SimClock, SimDisk, SimFileSystem

#: Payload sizes chosen to cross interesting shapes: tiny, odd-sized,
#: empty, and larger-than-header.
PAYLOADS = (b"alpha", b"z", b"", b"0123456789" * 7, b"tail-record")


def _fresh_fs():
    return SimFileSystem(SimDisk(SimClock()), cache_blocks=128)


def _build_log_image():
    """One WAL with every payload, plus its record boundaries and targets."""
    fs = _fresh_fs()
    log = RedoLog(fs.create("wal"))
    boundaries = [0]
    targets = []
    offset = 0
    for payload in PAYLOADS:
        log.log_write(offset, payload)
        targets.append((offset, payload))
        offset += max(len(payload), 1)
        boundaries.append(boundaries[-1] + _REC.size + len(payload))
    image = log._file.read(0, log.size)
    return image, boundaries, targets


IMAGE, BOUNDARIES, TARGETS = _build_log_image()


def _expected_prefix(cut: int):
    """Records fully contained in the first ``cut`` bytes of the log."""
    complete = 0
    while complete < len(TARGETS) and BOUNDARIES[complete + 1] <= cut:
        complete += 1
    return TARGETS[:complete]


@pytest.mark.parametrize("cut", range(len(IMAGE) + 1))
def test_every_cut_position_recovers_the_complete_prefix(cut):
    fs = _fresh_fs()
    wal_file = fs.create("wal")
    if cut:
        wal_file.write(0, IMAGE[:cut])
    log = RedoLog(wal_file)

    expected = _expected_prefix(cut)
    records, torn = log.records()
    assert records == expected
    assert torn == (cut not in BOUNDARIES)

    # Replay onto a main file large enough for every expected target.
    main = fs.create("main")
    main.write(0, b"\x00" * 128)
    report = recover(log, main)
    assert report.replayed == len(expected)
    assert report.bytes_replayed == sum(len(p) for _o, p in expected)
    assert report.torn_tail == (cut not in BOUNDARIES)
    for offset, payload in expected:
        assert main.read(offset, len(payload)) == payload

    # Recovery checkpointed: the log is empty and a rerun replays nothing.
    assert log.size == 0
    again = recover(log, main)
    assert again.replayed == 0 and not again.torn_tail


def test_mid_log_magic_corruption_stops_the_replay():
    """A corrupt *interior* header ends trust at that record, not at EOF."""
    fs = _fresh_fs()
    wal_file = fs.create("wal")
    wal_file.write(0, IMAGE)
    # Stomp the magic of the third record.
    wal_file.write(BOUNDARIES[2], b"XXXX")
    records, torn = RedoLog(wal_file).records()
    assert records == TARGETS[:2]
    assert torn


def test_mid_log_payload_corruption_stops_the_replay():
    fs = _fresh_fs()
    wal_file = fs.create("wal")
    wal_file.write(0, IMAGE)
    # Flip a byte inside the first record's payload (after its header).
    wal_file.write(BOUNDARIES[0] + _REC.size, b"\xff")
    records, torn = RedoLog(wal_file).records()
    assert records == []
    assert torn


def test_length_field_pointing_past_eof_is_a_torn_tail():
    """A header whose length overruns the file must not read garbage."""
    fs = _fresh_fs()
    wal_file = fs.create("wal")
    log = RedoLog(wal_file)
    log.log_write(0, b"ok")
    size_before = log.size
    log.log_write(2, b"x" * 50)
    # Keep the second header but only part of its payload.
    wal_file.truncate(size_before + _REC.size + 10)
    records, torn = RedoLog(wal_file).records()
    assert records == [(0, b"ok")]
    assert torn


# -- whole-epoch recovery: ingest batches sealed by epoch markers ---------
#
# The continuous-ingest WAL discipline: every segment write of a batch is
# logged, then one epoch-commit marker seals the batch.  A crash at any
# byte must recover to the last *fully published* epoch — a cut after a
# delete's tombstone write but before its marker discards the whole
# batch; a cut mid-batch never leaks a partial batch.

from repro.mneme import EPOCH_MARKER_OFFSET, recover_to_epoch
from repro.mneme.recovery import _EPOCH_PAYLOAD

#: (target offset | "epoch", payload | epoch number) — two adds sealed by
#: epoch 1, a delete-tombstone write sealed by epoch 2, then a mid-batch
#: write cut off before its marker could land.
EPOCH_SCRIPT = (
    (0, b"add:doc-21"),
    (16, b"add:doc-22"),
    ("epoch", 1),
    (32, b"tombstone:doc-3"),
    ("epoch", 2),
    (48, b"add:doc-23-uncommitted"),
)


def _build_epoch_log_image():
    fs = _fresh_fs()
    log = RedoLog(fs.create("wal"))
    boundaries = [0]
    for target, payload in EPOCH_SCRIPT:
        if target == "epoch":
            log.log_epoch(payload)
            length = _EPOCH_PAYLOAD.size
        else:
            log.log_write(target, payload)
            length = len(payload)
        boundaries.append(boundaries[-1] + _REC.size + length)
    return log._file.read(0, log.size), boundaries


EPOCH_IMAGE, EPOCH_BOUNDARIES = _build_epoch_log_image()


def _expected_epoch_state(cut: int):
    """(epoch, replayed writes, discarded) for a log cut at ``cut``."""
    complete = 0
    while (
        complete < len(EPOCH_SCRIPT)
        and EPOCH_BOUNDARIES[complete + 1] <= cut
    ):
        complete += 1
    committed = 0
    epoch = 0
    for i in range(complete):
        if EPOCH_SCRIPT[i][0] == "epoch":
            committed = i + 1
            epoch = EPOCH_SCRIPT[i][1]
    writes = [
        EPOCH_SCRIPT[i] for i in range(committed)
        if EPOCH_SCRIPT[i][0] != "epoch"
    ]
    return epoch, writes, complete - committed


@pytest.mark.parametrize("cut", range(len(EPOCH_IMAGE) + 1))
def test_every_cut_recovers_to_a_whole_epoch(cut):
    fs = _fresh_fs()
    wal_file = fs.create("wal")
    if cut:
        wal_file.write(0, EPOCH_IMAGE[:cut])
    log = RedoLog(wal_file)
    main = fs.create("main")
    main.write(0, b"\x00" * 128)
    before = main.read(0, 128)

    epoch, writes, discarded = _expected_epoch_state(cut)
    report = recover_to_epoch(log, main)
    assert report.epoch == epoch
    assert report.replayed == len(writes)
    assert report.discarded == discarded
    assert report.torn_tail == (cut not in EPOCH_BOUNDARIES)
    for offset, payload in writes:
        assert main.read(offset, len(payload)) == payload
    # Nothing beyond the last sealed epoch leaked onto the main file:
    # bytes outside the committed writes are untouched.
    touched = {
        i for offset, payload in writes
        for i in range(offset, offset + len(payload))
    }
    after = main.read(0, 128)
    for i in range(128):
        if i not in touched:
            assert after[i] == before[i]
    # Recovery checkpointed; a rerun is a no-op at epoch 0.
    assert log.size == 0
    again = recover_to_epoch(log, main)
    assert again.replayed == 0 and again.epoch == 0


def test_plain_recover_skips_markers_but_replays_everything():
    """Ordinary recovery honours markers as metadata only: every complete
    write replays, and the report carries the last marker's epoch."""
    fs = _fresh_fs()
    wal_file = fs.create("wal")
    wal_file.write(0, EPOCH_IMAGE)
    main = fs.create("main")
    main.write(0, b"\x00" * 128)
    report = recover(RedoLog(wal_file), main)
    assert report.epoch == 2
    assert report.replayed == 4  # all writes, markers skipped
    assert main.read(48, len(b"add:doc-23-uncommitted")) == b"add:doc-23-uncommitted"


def test_epoch_marker_offset_is_unreachable_by_physical_writes():
    """No physical record can alias the sentinel: replay would have to
    target an offset past any real file, which raises instead."""
    from repro.errors import RecoveryError

    fs = _fresh_fs()
    log = RedoLog(fs.create("wal"))
    log.log_write(EPOCH_MARKER_OFFSET - 1, b"almost")
    log.log_epoch(1)
    main = fs.create("main")
    main.write(0, b"\x00" * 64)
    with pytest.raises(RecoveryError):
        recover_to_epoch(log, main)
