"""Tests for multi-file stores and identifier-space boundaries."""

import pytest

from repro.errors import InvalidIdentifierError
from repro.mneme import (
    ID_BITS,
    MAX_LOCAL_ID,
    MediumObjectPool,
    MnemeStore,
    SmallObjectPool,
    make_global,
    split_global,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def store():
    return MnemeStore(SimFileSystem(SimDisk(SimClock()), cache_blocks=64))


def open_standard(store, name):
    f = store.open_file(name)
    f.create_pool(1, SmallObjectPool)
    f.create_pool(2, MediumObjectPool)
    f.load()
    return f


def test_three_files_route_independently(store):
    files = [open_standard(store, f"f{i}") for i in range(3)]
    gids = []
    for i, f in enumerate(files):
        oid = f.pool(2).create(f"payload-{i}".encode() * 10)
        f.flush()
        gids.append(store.global_id(f, oid))
    for i, gid in enumerate(gids):
        assert store.fetch(gid) == f"payload-{i}".encode() * 10
    # Same local oid in different files yields different globals.
    locals_ = [split_global(g)[1] for g in gids]
    assert locals_[0] == locals_[1] == locals_[2]
    assert len(set(gids)) == 3


def test_file_numbers_assigned_sequentially(store):
    a = open_standard(store, "a")
    b = open_standard(store, "b")
    assert a.file_no == 0
    assert b.file_no == 1


def test_global_id_space_boundary():
    top_local = MAX_LOCAL_ID - 1
    gid = make_global(5, top_local)
    assert split_global(gid) == (5, top_local)
    with pytest.raises(InvalidIdentifierError):
        make_global(5, MAX_LOCAL_ID)  # exceeds the 2^28 local space
    with pytest.raises(InvalidIdentifierError):
        make_global(-1, 1)


def test_file_zero_globals_equal_locals():
    # "Object identifiers are mapped to globally unique identifiers":
    # for the first file the mapping is the identity, which is why the
    # paper's dictionary can store either form for a single-file index.
    assert make_global(0, 12345) == 12345


def test_reservations_release_across_files(store):
    from repro.mneme import LRUBuffer

    a = open_standard(store, "a")
    b = open_standard(store, "b")
    a.pool(2).attach_buffer(LRUBuffer(65536))
    b.pool(2).attach_buffer(LRUBuffer(65536))
    oid_a = a.pool(2).create(b"aaa" * 40)
    oid_b = b.pool(2).create(b"bbb" * 40)
    a.flush()
    b.flush()
    gid_a = store.global_id(a, oid_a)
    gid_b = store.global_id(b, oid_b)
    store.fetch(gid_a)
    store.fetch(gid_b)
    assert store.reserve(gid_a)
    assert store.reserve(gid_b)
    store.release_reservations()
    # No pins remain in either file's buffers.
    for f in (a, b):
        buffer = f.pool(2).buffer
        assert not any(
            buffer.reserved(key) for key in list(getattr(buffer, "_entries", {}))
        )


def test_id_bits_constant():
    assert MAX_LOCAL_ID == 1 << ID_BITS
    assert ID_BITS == 28  # the paper's 2^28 bound
