"""Unit tests for the three object pools."""

import pytest

from repro.errors import ObjectNotFoundError, PoolError
from repro.mneme import (
    LOGICAL_SEGMENT_OBJECTS,
    LRUBuffer,
    LargeObjectPool,
    MediumObjectPool,
    MnemeStore,
    SmallObjectPool,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def fs():
    return SimFileSystem(SimDisk(SimClock()), cache_blocks=256)


@pytest.fixture()
def mfile(fs):
    store = MnemeStore(fs)
    f = store.open_file("inv")
    f.create_pool(1, SmallObjectPool)
    f.create_pool(2, MediumObjectPool)
    f.create_pool(3, LargeObjectPool)
    f.load()
    return f


class TestSmallObjectPool:
    def test_create_fetch(self, mfile):
        pool = mfile.pool(1)
        oid = pool.create(b"tiny")
        mfile.flush()
        assert pool.fetch(oid) == b"tiny"

    def test_rejects_oversized(self, mfile):
        with pytest.raises(PoolError):
            mfile.pool(1).create(b"x" * 13)

    def test_accepts_exactly_twelve_bytes(self, mfile):
        pool = mfile.pool(1)
        oid = pool.create(b"123456789012")
        mfile.flush()
        assert pool.fetch(oid) == b"123456789012"

    def test_255_objects_one_segment(self, mfile):
        pool = mfile.pool(1)
        oids = [pool.create(f"{i:03d}".encode()) for i in range(600)]
        mfile.flush()
        # 600 objects span 3 logical segments = 3 physical segments.
        assert len(set(oid // 1000 for oid in oids)) >= 1
        assert len(list(pool.logsegs())) == 3
        for i in (0, 254, 255, 599):
            assert pool.fetch(oids[i]) == f"{i:03d}".encode()

    def test_fetch_before_flush_serves_open_segment(self, mfile):
        pool = mfile.pool(1)
        oid = pool.create(b"live")
        assert pool.fetch(oid) == b"live"

    def test_modify(self, mfile):
        pool = mfile.pool(1)
        oid = pool.create(b"aaa")
        mfile.flush()
        pool.modify(oid, b"bbbb")
        mfile.flush()
        assert pool.fetch(oid) == b"bbbb"

    def test_delete(self, mfile):
        pool = mfile.pool(1)
        oid = pool.create(b"gone")
        mfile.flush()
        pool.delete(oid)
        mfile.flush()
        with pytest.raises(ObjectNotFoundError):
            pool.fetch(oid)

    def test_unknown_oid(self, mfile):
        with pytest.raises(ObjectNotFoundError):
            mfile.pool(1).fetch(12345)


class TestMediumObjectPool:
    def test_create_fetch(self, mfile):
        pool = mfile.pool(2)
        oid = pool.create(b"m" * 100)
        mfile.flush()
        assert pool.fetch(oid) == b"m" * 100

    def test_rejects_oversized(self, mfile):
        with pytest.raises(PoolError):
            mfile.pool(2).create(b"x" * 4097)

    def test_objects_packed_into_8k_segments(self, mfile):
        pool = mfile.pool(2)
        oids = [pool.create(bytes([i % 251]) * 1000) for i in range(40)]
        mfile.flush()
        # ~7 objects of ~1 KB per 8 KB segment -> about 6 segments.
        assert 4 <= len(pool._segs) <= 10
        for i, oid in enumerate(oids):
            assert pool.fetch(oid) == bytes([i % 251]) * 1000

    def test_segments_padded_to_8k(self, mfile):
        pool = mfile.pool(2)
        pool.create(b"a" * 100)
        mfile.flush()
        offset, length = pool._segs.get(0)
        assert length == 8192

    def test_modify_in_place(self, mfile):
        pool = mfile.pool(2)
        oid = pool.create(b"start" * 10)
        mfile.flush()
        pool.modify(oid, b"changed!" * 6)
        mfile.flush()
        assert pool.fetch(oid) == b"changed!" * 6

    def test_modify_that_overflows_segment_rejected(self, mfile):
        pool = mfile.pool(2)
        oids = [pool.create(b"x" * 2500) for _ in range(3)]  # ~7.5 KB together
        mfile.flush()
        with pytest.raises(PoolError):
            pool.modify(oids[0], b"y" * 4000)
        # Rolled back: old value intact.
        assert pool.fetch(oids[0]) == b"x" * 2500

    def test_delete_tombstones(self, mfile):
        pool = mfile.pool(2)
        oid = pool.create(b"bye" * 10)
        keep = pool.create(b"keep" * 10)
        mfile.flush()
        pool.delete(oid)
        mfile.flush()
        with pytest.raises(ObjectNotFoundError):
            pool.fetch(oid)
        assert pool.fetch(keep) == b"keep" * 10


class TestLargeObjectPool:
    def test_create_fetch(self, mfile):
        pool = mfile.pool(3)
        big = bytes(range(256)) * 300  # ~77 KB
        oid = pool.create(big)
        mfile.flush()
        assert pool.fetch(oid) == big

    def test_each_object_own_segment(self, mfile):
        pool = mfile.pool(3)
        pool.create(b"a" * 5000)
        pool.create(b"b" * 90000)
        assert len(pool._segs) == 2
        off0, len0 = pool._segs.get(0)
        off1, len1 = pool._segs.get(1)
        assert len1 > len0  # segments sized to their object

    def test_modify_in_place_when_fits(self, mfile):
        pool = mfile.pool(3)
        oid = pool.create(b"z" * 10000)
        size_before = mfile.main.size
        pool.modify(oid, b"w" * 9000)
        assert mfile.main.size == size_before  # rewritten in place
        assert pool.fetch(oid) == b"w" * 9000

    def test_modify_grown_relocates(self, mfile):
        pool = mfile.pool(3)
        oid = pool.create(b"z" * 1000)
        size_before = mfile.main.size
        pool.modify(oid, b"w" * 5000)
        assert mfile.main.size > size_before  # old extent leaks
        assert pool.fetch(oid) == b"w" * 5000

    def test_delete(self, mfile):
        pool = mfile.pool(3)
        oid = pool.create(b"gone" * 2000)
        pool.delete(oid)
        with pytest.raises(ObjectNotFoundError):
            pool.fetch(oid)


class TestBufferIntegration:
    def test_lru_buffer_absorbs_repeat_fetches(self, mfile):
        pool = mfile.pool(2)
        buf = LRUBuffer(64 * 1024)
        pool.attach_buffer(buf)
        oid = pool.create(b"data" * 200)
        mfile.flush()
        mfile.fs.chill()
        pool.fetch(oid)
        accesses_after_first = mfile.main.stats.read_calls
        pool.fetch(oid)
        assert mfile.main.stats.read_calls == accesses_after_first
        assert buf.stats.hits >= 1

    def test_fetching_one_object_reads_whole_segment(self, mfile):
        # "Accessing a given object will cause the entire physical
        # segment to be read in."
        pool = mfile.pool(2)
        oids = [pool.create(b"k" * 1000) for _ in range(7)]
        mfile.flush()
        mfile.fs.chill()
        before = mfile.main.stats.bytes_delivered
        pool.fetch(oids[0])
        assert mfile.main.stats.bytes_delivered - before == 8192

    def test_reserve_pins_resident_segment(self, mfile):
        pool = mfile.pool(2)
        buf = LRUBuffer(8192)  # exactly one segment
        pool.attach_buffer(buf)
        a = pool.create(b"a" * 3000)
        # force a second segment
        b = pool.create(b"b" * 3000)
        c = pool.create(b"c" * 3000)
        mfile.flush()
        pool.fetch(a)
        assert mfile.reserve(a)
        pool.fetch(c)  # would normally evict segment of a
        assert pool.reserve(a)  # still resident
        mfile.release_reservations()

    def test_reserve_absent_is_false(self, mfile):
        pool = mfile.pool(2)
        buf = LRUBuffer(8192)
        pool.attach_buffer(buf)
        oid = pool.create(b"a" * 100)
        mfile.flush()
        buf.clear()
        assert not mfile.reserve(oid)


class TestPersistence:
    def test_reopen_and_fetch(self, fs):
        store = MnemeStore(fs)
        f = store.open_file("inv")
        small = f.create_pool(1, SmallObjectPool)
        medium = f.create_pool(2, MediumObjectPool)
        large = f.create_pool(3, LargeObjectPool)
        f.load()
        ids = {
            "s": small.create(b"abc"),
            "m": medium.create(b"m" * 500),
            "l": large.create(b"l" * 50000),
        }
        f.flush()

        store2 = MnemeStore(fs)
        f2 = store2.open_file("inv")
        f2.create_pool(1, SmallObjectPool)
        f2.create_pool(2, MediumObjectPool)
        f2.create_pool(3, LargeObjectPool)
        f2.load()
        assert f2.fetch(ids["s"]) == b"abc"
        assert f2.fetch(ids["m"]) == b"m" * 500
        assert f2.fetch(ids["l"]) == b"l" * 50000

    def test_create_after_reopen_fills_partial_segments(self, fs):
        store = MnemeStore(fs)
        f = store.open_file("inv")
        small = f.create_pool(1, SmallObjectPool)
        medium = f.create_pool(2, MediumObjectPool)
        f.load()
        s1 = small.create(b"one")
        m1 = medium.create(b"m" * 100)
        f.flush()
        segs_before = len(medium._segs)

        store2 = MnemeStore(fs)
        f2 = store2.open_file("inv")
        small2 = f2.create_pool(1, SmallObjectPool)
        medium2 = f2.create_pool(2, MediumObjectPool)
        f2.load()
        s2 = small2.create(b"two")
        m2 = medium2.create(b"n" * 100)
        f2.flush()
        assert len(medium2._segs) == segs_before  # reused the open segment
        assert f2.fetch(s1) == b"one"
        assert f2.fetch(s2) == b"two"
        assert f2.fetch(m1) == b"m" * 100
        assert f2.fetch(m2) == b"n" * 100
        # Sequential ids continue across the reopen.
        assert s2 == s1 + 1
