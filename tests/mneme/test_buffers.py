"""Unit tests for the extensible buffer framework."""

import pytest

from repro.errors import BufferError_
from repro.mneme import LRUBuffer, NullBuffer


def test_lookup_miss_counts_ref():
    buf = LRUBuffer(100)
    assert buf.lookup("a") is None
    assert buf.stats.refs == 1
    assert buf.stats.hits == 0


def test_insert_then_lookup_hits():
    buf = LRUBuffer(100)
    buf.insert("a", "segment-a", 10)
    assert buf.lookup("a") == "segment-a"
    assert buf.stats.hits == 1
    assert buf.stats.hit_rate == 1.0


def test_byte_budget_evicts_lru():
    buf = LRUBuffer(25)
    buf.insert("a", "A", 10)
    buf.insert("b", "B", 10)
    buf.lookup("a")
    buf.insert("c", "C", 10)  # 30 > 25: evict LRU "b"
    assert "b" not in buf
    assert "a" in buf and "c" in buf
    assert buf.used_bytes == 20


def test_oversized_entry_evicts_everything_else():
    buf = LRUBuffer(30)
    buf.insert("a", "A", 10)
    buf.insert("big", "BIG", 28)
    assert "a" not in buf
    assert "big" in buf


def test_reinsert_updates_size():
    buf = LRUBuffer(100)
    buf.insert("a", "A", 10)
    buf.insert("a", "A2", 50)
    assert buf.used_bytes == 50
    assert buf.lookup("a") == "A2"
    assert buf.stats.insertions == 1  # re-insert is not a new entry


def test_reservation_protects_from_eviction():
    buf = LRUBuffer(25)
    buf.insert("a", "A", 10)
    assert buf.reserve("a")
    buf.insert("b", "B", 10)
    buf.insert("c", "C", 10)  # must evict "b", not reserved "a"
    assert "a" in buf
    assert "b" not in buf
    buf.release_reservations()
    buf.insert("d", "D", 20)
    assert "a" not in buf  # no longer protected


def test_reserve_absent_returns_false():
    buf = LRUBuffer(100)
    assert not buf.reserve("ghost")


def test_all_reserved_tolerates_overflow():
    buf = LRUBuffer(15)
    buf.insert("a", "A", 10)
    buf.reserve("a")
    buf.insert("b", "B", 10)
    buf.reserve("b")
    buf.insert("c", "C", 10)
    assert len(buf) == 3  # progress over precision


def test_dirty_eviction_calls_save():
    saved = []
    buf = LRUBuffer(15)
    buf.attach(1, lambda key, seg: saved.append((key, seg)))
    buf.insert((1, 7), "dirty-seg", 10, dirty=True)
    buf.insert((1, 8), "other", 10)
    assert ((1, 7), "dirty-seg") in saved


def test_flush_writes_dirty_and_keeps_entries():
    saved = []
    buf = LRUBuffer(100)
    buf.attach(1, lambda key, seg: saved.append(key))
    buf.insert((1, 1), "S1", 10, dirty=True)
    buf.insert((1, 2), "S2", 10)
    buf.flush()
    assert saved == [(1, 1)]
    assert (1, 1) in buf
    buf.flush()
    assert saved == [(1, 1)]  # dirty flag cleared by first flush


def test_mark_dirty_then_clear_saves():
    saved = []
    buf = LRUBuffer(100)
    buf.attach(2, lambda key, seg: saved.append(key))
    buf.insert((2, 5), "S", 10)
    buf.mark_dirty((2, 5))
    buf.clear()
    assert saved == [(2, 5)]
    assert len(buf) == 0


def test_mark_dirty_absent_raises():
    buf = LRUBuffer(100)
    with pytest.raises(BufferError_):
        buf.mark_dirty("ghost")


def test_dirty_without_attached_pool_raises():
    buf = LRUBuffer(5)
    buf.insert((9, 1), "S", 10, dirty=True)
    with pytest.raises(BufferError_):
        buf.insert((9, 2), "T", 10)  # eviction of dirty (9,1) has no saver


def test_two_pools_share_one_buffer():
    saved = []
    buf = LRUBuffer(10)
    buf.attach(1, lambda key, seg: saved.append(("p1", key)))
    buf.attach(2, lambda key, seg: saved.append(("p2", key)))
    buf.insert((1, 0), "A", 10, dirty=True)
    buf.insert((2, 0), "B", 10, dirty=True)  # evicts pool 1's segment
    assert ("p1", (1, 0)) in saved
    buf.clear()
    assert ("p2", (2, 0)) in saved


def test_negative_capacity_rejected():
    with pytest.raises(BufferError_):
        LRUBuffer(-1)


class TestNullBuffer:
    def test_never_retains(self):
        buf = NullBuffer()
        buf.insert("a", "A", 10)
        assert buf.lookup("a") is None
        assert not buf.resident("a")
        assert buf.stats.hits == 0
        assert buf.stats.refs == 1

    def test_refs_counted(self):
        buf = NullBuffer()
        buf.lookup("x")
        buf.lookup("y")
        assert buf.stats.refs == 2

    def test_dirty_insert_saves_immediately(self):
        saved = []
        buf = NullBuffer()
        buf.attach(1, lambda key, seg: saved.append(key))
        buf.insert((1, 3), "S", 10, dirty=True)
        assert saved == [(1, 3)]

    def test_reserve_always_false(self):
        assert not NullBuffer().reserve("a")

    def test_mark_dirty_raises(self):
        with pytest.raises(BufferError_):
            NullBuffer().mark_dirty("a")
