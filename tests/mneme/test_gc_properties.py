"""Property tests: compaction and GC preserve exactly the live objects."""

from hypothesis import given, settings, strategies as st

from repro.errors import ObjectNotFoundError
from repro.mneme import (
    ChunkedLargeObjectPool,
    MediumObjectPool,
    MnemeStore,
    SmallObjectPool,
    collect,
    compact,
    read_linked,
    write_linked,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


def build_file():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    store = MnemeStore(fs)
    f = store.open_file("inv")
    f.create_pool(1, SmallObjectPool)
    f.create_pool(2, MediumObjectPool)
    f.create_pool(3, ChunkedLargeObjectPool)
    f.load()
    return f


ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.binary(min_size=0, max_size=800)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=50)),
        st.tuples(st.just("modify"), st.integers(min_value=0, max_value=50)),
    ),
    max_size=40,
)


@given(ops=ops_st)
@settings(max_examples=30, deadline=None)
def test_compaction_preserves_model(ops):
    f = build_file()
    model = {}
    order = []
    for op, arg in ops:
        if op == "create":
            pool = f.pool(1) if len(arg) <= 12 else f.pool(2)
            oid = pool.create(arg)
            model[oid] = arg
            order.append(oid)
        elif op == "delete" and order:
            oid = order[arg % len(order)]
            if oid in model:
                f._pool_of(oid).delete(oid)
                del model[oid]
        elif op == "modify" and order:
            oid = order[arg % len(order)]
            if oid in model:
                new = model[oid][: max(0, len(model[oid]) - 1)]
                try:
                    f._pool_of(oid).modify(oid, new)
                    model[oid] = new
                except Exception:
                    pass  # pool policy rejected it; model unchanged
    f.flush()
    compact(f)
    for oid, data in model.items():
        assert f.fetch(oid) == data
    for oid in order:
        if oid not in model:
            try:
                f.fetch(oid)
                assert False, f"deleted object {oid} still fetchable"
            except ObjectNotFoundError:
                pass


@given(
    chains=st.lists(
        st.binary(min_size=1, max_size=3000), min_size=1, max_size=8
    ),
    keep_mask=st.lists(st.booleans(), min_size=8, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_gc_keeps_exactly_the_rooted_chains(chains, keep_mask):
    f = build_file()
    pool = f.pool(3)
    heads = [write_linked(pool, data, chunk_bytes=512) for data in chains]
    f.flush()
    roots = [head for head, keep in zip(heads, keep_mask) if keep]
    collect(f, roots=roots)
    for head, data, keep in zip(heads, chains, keep_mask):
        if keep:
            assert read_linked(pool, head) == data
        else:
            try:
                read_linked(pool, head)
                assert False, "swept chain still readable"
            except Exception:
                pass
    # GC then compaction compose cleanly.
    compact(f)
    for head, data, keep in zip(heads, chains, keep_mask):
        if keep:
            assert read_linked(pool, head) == data
