"""Failure-injection tests: disk full, corruption, torn writes, pressure."""

import pytest

from repro.errors import BadBlockError, DiskFullError, ObjectNotFoundError
from repro.mneme import (
    LRUBuffer,
    MediumObjectPool,
    MnemeStore,
    RedoLog,
    SmallObjectPool,
    LargeObjectPool,
    recover,
)
from repro.simdisk import BLOCK_SIZE, SimClock, SimDisk, SimFileSystem


def build(fs, wal=None):
    store = MnemeStore(fs)
    mfile = store.open_file("inv", wal=wal)
    mfile.create_pool(1, SmallObjectPool)
    mfile.create_pool(2, MediumObjectPool)
    mfile.create_pool(3, LargeObjectPool)
    mfile.load()
    return mfile


class TestDiskFull:
    def test_create_fails_cleanly_when_disk_fills(self):
        fs = SimFileSystem(SimDisk(SimClock(), capacity_blocks=48), cache_blocks=4)
        mfile = build(fs)
        pool = mfile.pool(3)
        written = []
        with pytest.raises(DiskFullError):
            for i in range(100):
                written.append(pool.create(bytes([i]) * 20000))
                mfile.flush()
        # Everything that committed before the failure is still readable.
        for i, oid in enumerate(written[:-1]):
            assert mfile.fetch(oid) == bytes([i]) * 20000

    def test_btree_build_fails_cleanly(self):
        from repro.btree import BTreeKeyedFile

        fs = SimFileSystem(SimDisk(SimClock(), capacity_blocks=4), cache_blocks=4)
        tree = BTreeKeyedFile(fs.create("t"))
        with pytest.raises(DiskFullError):
            for key in range(10000):
                tree.insert(key, b"payload" * 10)


class TestCorruption:
    def test_corrupt_disk_block_surfaces_as_bad_block(self):
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=4)
        mfile = build(fs)
        oid = mfile.pool(2).create(b"target" * 100)
        mfile.flush()
        fs.chill()
        # Corrupt the disk block holding the medium segment.
        offset, _length = mfile.pool(2)._segs.get(0)
        file_block = offset // BLOCK_SIZE
        disk_block = mfile.main._blocks[file_block]
        fs.disk.corrupt_block(disk_block)
        with pytest.raises(BadBlockError):
            mfile.fetch(oid)

    def test_crc_failure_on_tampered_segment(self):
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
        mfile = build(fs)
        oid = mfile.pool(2).create(b"important" * 50)
        mfile.flush()
        offset, _length = mfile.pool(2)._segs.get(0)
        mfile.main.write(offset + 40, b"\xff\xff\xff")
        mfile.drop_user_caches()
        with pytest.raises(BadBlockError):
            mfile.fetch(oid)

    def test_wal_repairs_tampered_segment(self):
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
        wal = RedoLog(fs.create("inv.wal"))
        mfile = build(fs, wal=wal)
        oid = mfile.pool(2).create(b"precious" * 50)
        mfile.flush()
        offset, _length = mfile.pool(2)._segs.get(0)
        mfile.main.write(offset + 20, b"\x00\x00\x00\x00")
        recover(wal, mfile.main)
        mfile.drop_user_caches()
        assert mfile.fetch(oid) == b"precious" * 50


class TestCachePressure:
    def test_zero_fs_cache_still_correct(self):
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=0)
        mfile = build(fs)
        ids = {mfile.pool(2).create(bytes([i]) * 300): i for i in range(40)}
        mfile.flush()
        for oid, i in ids.items():
            assert mfile.fetch(oid) == bytes([i]) * 300

    def test_tiny_lru_buffer_still_correct(self):
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=16)
        mfile = build(fs)
        pool = mfile.pool(2)
        pool.attach_buffer(LRUBuffer(1))  # degenerate: evicts constantly
        ids = {pool.create(bytes([i]) * 500): i for i in range(30)}
        mfile.flush()
        for oid, i in list(ids.items()) + list(reversed(ids.items())):
            assert mfile.fetch(oid) == bytes([i]) * 500

    def test_buffer_smaller_than_one_segment(self):
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=16)
        mfile = build(fs)
        pool = mfile.pool(3)
        pool.attach_buffer(LRUBuffer(10))  # smaller than any segment
        oid = pool.create(b"big" * 20000)
        mfile.flush()
        assert mfile.fetch(oid) == b"big" * 20000


class TestTornWalInteractions:
    def test_partial_replay_leaves_prefix_consistent(self):
        fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
        wal_file = fs.create("inv.wal")
        wal = RedoLog(wal_file)
        mfile = build(fs, wal=wal)
        first = mfile.pool(2).create(b"first" * 40)
        mfile.flush()
        second = mfile.pool(3).create(b"second" * 3000)
        mfile.flush()
        # Tear the final WAL record, wipe the main file, recover.
        image_after_first = None
        wal_file.truncate(wal_file.size - 7)
        mfile.main.write(16, b"\x00" * (mfile.main.size - 16))
        report = recover(RedoLog(wal_file), mfile.main)
        assert report.torn_tail
        mfile.drop_user_caches()
        # The first (fully logged) object is intact.
        assert mfile.fetch(first) == b"first" * 40
        # The second, whose record was torn, is gone or unreadable — but
        # accessing it must fail with a library error, never corrupt data.
        with pytest.raises(Exception):
            data = mfile.fetch(second)
            assert data != b"second" * 3000
