"""Unit tests for object identifier arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidIdentifierError
from repro.mneme import (
    LOGICAL_SEGMENT_OBJECTS,
    MAX_LOCAL_ID,
    logical_segment,
    make_global,
    oid_for,
    slot_in_segment,
    split_global,
)


def test_first_oid_is_one_in_segment_zero():
    assert oid_for(0, 0) == 1
    assert logical_segment(1) == 0
    assert slot_in_segment(1) == 0


def test_segment_boundary():
    last_of_seg0 = oid_for(0, LOGICAL_SEGMENT_OBJECTS - 1)
    first_of_seg1 = oid_for(1, 0)
    assert first_of_seg1 == last_of_seg0 + 1
    assert logical_segment(last_of_seg0) == 0
    assert logical_segment(first_of_seg1) == 1


def test_null_and_out_of_range_rejected():
    for bad in (0, -1, MAX_LOCAL_ID, MAX_LOCAL_ID + 5):
        with pytest.raises(InvalidIdentifierError):
            logical_segment(bad)


def test_oid_for_validates_inputs():
    with pytest.raises(InvalidIdentifierError):
        oid_for(-1, 0)
    with pytest.raises(InvalidIdentifierError):
        oid_for(0, LOGICAL_SEGMENT_OBJECTS)
    with pytest.raises(InvalidIdentifierError):
        oid_for(0, -1)


def test_global_roundtrip():
    gid = make_global(3, 12345)
    assert split_global(gid) == (3, 12345)


def test_global_of_file_zero_is_local_id():
    assert make_global(0, 42) == 42


def test_split_global_rejects_garbage():
    with pytest.raises(InvalidIdentifierError):
        split_global(0)
    with pytest.raises(InvalidIdentifierError):
        split_global(-9)
    with pytest.raises(InvalidIdentifierError):
        split_global(1 << 28)  # local part is zero


@given(
    logseg=st.integers(min_value=0, max_value=(MAX_LOCAL_ID - 2) // LOGICAL_SEGMENT_OBJECTS - 1),
    slot=st.integers(min_value=0, max_value=LOGICAL_SEGMENT_OBJECTS - 1),
)
def test_oid_roundtrip_property(logseg, slot):
    oid = oid_for(logseg, slot)
    assert logical_segment(oid) == logseg
    assert slot_in_segment(oid) == slot


@given(
    file_no=st.integers(min_value=0, max_value=2**20),
    oid=st.integers(min_value=1, max_value=MAX_LOCAL_ID - 1),
)
def test_global_roundtrip_property(file_no, oid):
    assert split_global(make_global(file_no, oid)) == (file_no, oid)
