"""Reservation lifecycle under pressure and on error paths.

The reserve optimization pins buffered segments for the duration of one
query.  Two properties keep it safe: a reserved segment must survive
any eviction pressure (the buffer tolerates overflow rather than evict
a pin), and *every* pin must be dropped when the query ends — including
when evaluation dies mid-query with an arbitrary exception, or the
buffer slowly fills with unevictable segments and degrades to a
sequential scan of the disk.
"""

import pytest

from repro.inquery import RetrievalEngine
from repro.inquery.daat import DocumentAtATimeEngine
from repro.inquery.query import parse_query, query_terms
from repro.mneme import LRUBuffer, PartitionedBuffer
from repro.core import config_by_name, materialize, prepare_collection
from repro.synth import (
    CollectionProfile,
    QueryProfile,
    SyntheticCollection,
    generate_query_set,
)


# -- buffer level -------------------------------------------------------------


def test_lru_reserved_entry_survives_pressure_until_release():
    buffer = LRUBuffer(100)
    buffer.insert("a", object(), 60)
    assert buffer.reserve("a")
    buffer.insert("b", object(), 60)  # over budget; "a" is pinned
    assert buffer.resident("a") and buffer.resident("b")
    assert buffer.used_bytes == 120  # overflow tolerated, not evicted

    buffer.release_reservations()
    buffer.insert("c", object(), 10)  # now "a" is fair game (LRU victim)
    assert not buffer.resident("a")
    assert buffer.used_bytes <= buffer.capacity_bytes
    assert buffer._reserved == {}


def test_lru_take_drops_the_reservation():
    buffer = LRUBuffer(100)
    buffer.insert("a", object(), 40)
    buffer.reserve("a")
    assert buffer.take("a") is not None
    assert not buffer.reserved("a")
    assert buffer._reserved == {}


def test_lru_clear_drops_reservations():
    buffer = LRUBuffer(100)
    buffer.insert("a", object(), 40)
    buffer.reserve("a")
    buffer.clear()
    assert not buffer.reserved("a")
    assert buffer._reserved == {}


def test_lru_reserve_absent_key_is_refused():
    buffer = LRUBuffer(100)
    assert not buffer.reserve("ghost")
    assert buffer._reserved == {}


def test_partitioned_release_empties_both_partitions():
    buffer = PartitionedBuffer(100, 100, threshold_bytes=50)
    buffer.insert("small", object(), 10)   # low partition
    buffer.insert("large", object(), 90)   # high partition
    assert buffer.reserve("small") and buffer.reserve("large")

    low, high = buffer.partitions
    assert low._reserved and high._reserved
    buffer.release_reservations()
    assert low._reserved == {} and high._reserved == {}


def test_partitioned_pin_shields_only_its_own_partition():
    buffer = PartitionedBuffer(60, 100, threshold_bytes=50)
    buffer.insert("s1", object(), 40)
    buffer.reserve("s1")
    buffer.insert("s2", object(), 40)  # low partition over budget, s1 pinned
    low, _high = buffer.partitions
    assert low.used_bytes == 80  # overflow tolerated
    buffer.insert("l1", object(), 90)
    buffer.insert("l2", object(), 90)  # high partition evicts l1 normally
    assert not buffer.resident("l1") and buffer.resident("l2")


# -- engine level: pins released even when the query dies ---------------------


@pytest.fixture(scope="module")
def system():
    profile = CollectionProfile(
        name="tiny-res", models="test", documents=200, mean_doc_length=60,
        doc_length_sigma=0.5, vocab_size=2500, seed=29,
    )
    collection = SyntheticCollection(profile)
    prepared = prepare_collection(collection)
    built = materialize(prepared, config_by_name("mneme-cache"))
    queries = generate_query_set(
        collection,
        QueryProfile(name="res-qs", style="natural", n_queries=4, mean_terms=4, seed=31),
    ).queries
    return built, queries


def _reserved_maps(store):
    maps = []
    for pool in (store.small, store.medium, store.large):
        buffer = pool.buffer
        if isinstance(buffer, PartitionedBuffer):
            maps.extend(side._reserved for side in buffer.partitions)
        elif isinstance(buffer, LRUBuffer):
            maps.append(buffer._reserved)
    return maps


def _flaky_fetch(store, monkeypatch, fail_from: int):
    calls = {"n": 0}
    real = store.fetch

    def fetch(key):
        calls["n"] += 1
        if calls["n"] >= fail_from:
            raise RuntimeError("injected mid-query failure")
        return real(key)

    monkeypatch.setattr(store, "fetch", fetch)


def test_taat_releases_reservations_when_evaluation_raises(system, monkeypatch):
    built, queries = system
    store = built.index.store
    engine = RetrievalEngine(built.index, top_k=10)
    engine.run_batch(queries)  # warm the buffers so reserve() really pins

    _flaky_fetch(store, monkeypatch, fail_from=2)
    with pytest.raises(RuntimeError):
        engine.run_query(queries[0])
    assert all(reserved == {} for reserved in _reserved_maps(store))

    monkeypatch.undo()
    result = engine.run_query(queries[0])  # engine is healthy again
    assert result.ranking


def test_daat_releases_reservations_when_stream_creation_raises(system, monkeypatch):
    built, queries = system
    store = built.index.store
    flat = "#sum( " + " ".join(query_terms(parse_query(queries[0]))) + " )"
    engine = DocumentAtATimeEngine(built.index, top_k=10)
    engine.run_query(flat)  # warm

    # The default posting stream fetches eagerly, so the second term's
    # stream creation raises; the reservations from the reserve pass
    # must still be dropped.
    _flaky_fetch(store, monkeypatch, fail_from=2)
    with pytest.raises(RuntimeError):
        engine.run_query(flat)
    assert all(reserved == {} for reserved in _reserved_maps(store))

    monkeypatch.undo()
    assert engine.run_query(flat).ranking
