"""Property-based tests: the store returns exactly what was stored."""

from hypothesis import given, settings, strategies as st

from repro.mneme import (
    LRUBuffer,
    LargeObjectPool,
    MediumObjectPool,
    MnemeStore,
    SmallObjectPool,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


def build_file(buffer_bytes=0):
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    store = MnemeStore(fs)
    f = store.open_file("inv")
    small = f.create_pool(1, SmallObjectPool)
    medium = f.create_pool(2, MediumObjectPool)
    large = f.create_pool(3, LargeObjectPool)
    f.load()
    if buffer_bytes:
        for pool in (small, medium, large):
            pool.attach_buffer(LRUBuffer(buffer_bytes))
    return f


def pool_for(f, data):
    if len(data) <= 12:
        return f.pool(1)
    if len(data) <= 4096:
        return f.pool(2)
    return f.pool(3)


payloads = st.lists(
    st.binary(min_size=0, max_size=6000),
    min_size=1,
    max_size=40,
)


@given(data_list=payloads)
@settings(max_examples=30, deadline=None)
def test_fetch_equals_stored(data_list):
    f = build_file()
    oids = [(pool_for(f, d).create(d), d) for d in data_list]
    f.flush()
    for oid, d in oids:
        assert f.fetch(oid) == d


@given(data_list=payloads, buffer_bytes=st.sampled_from([0, 8192, 65536]))
@settings(max_examples=20, deadline=None)
def test_fetch_independent_of_buffering(data_list, buffer_bytes):
    f = build_file(buffer_bytes)
    oids = [(pool_for(f, d).create(d), d) for d in data_list]
    f.flush()
    f.fs.chill()
    for oid, d in oids:
        assert f.fetch(oid) == d
    for oid, d in reversed(oids):
        assert f.fetch(oid) == d


@given(data_list=payloads)
@settings(max_examples=20, deadline=None)
def test_reopen_preserves_everything(data_list):
    f = build_file()
    oids = [(pool_for(f, d).create(d), d) for d in data_list]
    f.flush()
    store2 = MnemeStore(f.fs)
    f2 = store2.open_file("inv")
    f2.create_pool(1, SmallObjectPool)
    f2.create_pool(2, MediumObjectPool)
    f2.create_pool(3, LargeObjectPool)
    f2.load()
    for oid, d in oids:
        assert f2.fetch(oid) == d


@given(
    data_list=payloads,
    modifications=st.lists(
        st.tuples(st.integers(min_value=0, max_value=39), st.binary(min_size=0, max_size=12)),
        max_size=10,
    ),
)
@settings(max_examples=20, deadline=None)
def test_small_modifications_persist(data_list, modifications):
    small = [d[:12] for d in data_list]
    f = build_file()
    oids = [f.pool(1).create(d) for d in small]
    f.flush()
    model = dict(zip(oids, small))
    for index, new_data in modifications:
        if index < len(oids):
            f.pool(1).modify(oids[index], new_data)
            model[oids[index]] = new_data
    f.flush()
    for oid, expected in model.items():
        assert f.fetch(oid) == expected
