"""Unit tests for physical segment codecs."""

import pytest

from repro.errors import BadBlockError, PoolError
from repro.mneme import (
    LOGICAL_SEGMENT_OBJECTS,
    SMALL_OBJECT_MAX,
    SMALL_SEGMENT_BYTES,
    DirectorySegment,
    FixedSlotSegment,
)


class TestFixedSlotSegment:
    def test_roundtrip(self):
        seg = FixedSlotSegment(pool_id=1, logseg=7)
        seg.put(0, b"hello")
        seg.put(254, b"x" * SMALL_OBJECT_MAX)
        seg.put(10, b"")
        raw = seg.to_bytes()
        assert len(raw) == SMALL_SEGMENT_BYTES
        back = FixedSlotSegment.from_bytes(raw)
        assert back.logseg == 7
        assert back.pool_id == 1
        assert back.get(0) == b"hello"
        assert back.get(254) == b"x" * SMALL_OBJECT_MAX
        assert back.get(10) == b""
        assert back.used == 3

    def test_empty_slots_stay_empty(self):
        seg = FixedSlotSegment(pool_id=1, logseg=0)
        back = FixedSlotSegment.from_bytes(seg.to_bytes())
        with pytest.raises(PoolError):
            back.get(3)

    def test_oversized_payload_rejected(self):
        seg = FixedSlotSegment(pool_id=1, logseg=0)
        with pytest.raises(PoolError):
            seg.put(0, b"y" * (SMALL_OBJECT_MAX + 1))

    def test_clear_slot(self):
        seg = FixedSlotSegment(pool_id=1, logseg=0)
        seg.put(5, b"data")
        seg.clear(5)
        back = FixedSlotSegment.from_bytes(seg.to_bytes())
        with pytest.raises(PoolError):
            back.get(5)

    def test_one_logical_segment_fits_one_4k_physical_segment(self):
        # The paper's design point: 255 objects of 16 bytes in 4 Kbytes.
        seg = FixedSlotSegment(pool_id=1, logseg=0)
        for slot in range(LOGICAL_SEGMENT_OBJECTS):
            seg.put(slot, b"abcdefghijkl")  # 12 bytes, the maximum
        assert len(seg.to_bytes()) == 4096

    def test_crc_detects_corruption(self):
        seg = FixedSlotSegment(pool_id=1, logseg=0)
        seg.put(0, b"payload")
        raw = bytearray(seg.to_bytes())
        raw[100] ^= 0xFF
        with pytest.raises(BadBlockError):
            FixedSlotSegment.from_bytes(bytes(raw))

    def test_wrong_magic_rejected(self):
        with pytest.raises(BadBlockError):
            FixedSlotSegment.from_bytes(b"JUNK" + bytes(SMALL_SEGMENT_BYTES - 4))


class TestDirectorySegment:
    def test_roundtrip(self):
        seg = DirectorySegment(pool_id=2)
        seg.put(10, b"abc")
        seg.put(5, b"")
        seg.put(900, b"z" * 1000)
        back = DirectorySegment.from_bytes(seg.to_bytes())
        assert back.get(10) == b"abc"
        assert back.get(5) == b""
        assert back.get(900) == b"z" * 1000
        assert len(back) == 3

    def test_empty_segment_roundtrip(self):
        back = DirectorySegment.from_bytes(DirectorySegment(pool_id=2).to_bytes())
        assert len(back) == 0

    def test_padding(self):
        seg = DirectorySegment(pool_id=2)
        seg.put(1, b"abc")
        raw = seg.to_bytes(pad_to=8192)
        assert len(raw) == 8192
        back = DirectorySegment.from_bytes(raw)
        assert back.get(1) == b"abc"

    def test_pad_too_small_rejected(self):
        seg = DirectorySegment(pool_id=2)
        seg.put(1, b"x" * 100)
        with pytest.raises(PoolError):
            seg.to_bytes(pad_to=50)

    def test_byte_size_matches_serialization(self):
        seg = DirectorySegment(pool_id=2)
        seg.put(1, b"abc")
        seg.put(2, b"defgh")
        assert seg.byte_size == len(seg.to_bytes())

    def test_remove(self):
        seg = DirectorySegment(pool_id=2)
        seg.put(1, b"abc")
        seg.remove(1)
        assert 1 not in seg
        with pytest.raises(PoolError):
            seg.remove(1)

    def test_get_missing_raises(self):
        with pytest.raises(PoolError):
            DirectorySegment(pool_id=2).get(99)

    def test_crc_detects_corruption(self):
        seg = DirectorySegment(pool_id=2)
        seg.put(1, b"payload bytes here")
        raw = bytearray(seg.to_bytes())
        raw[-3] ^= 0x55
        with pytest.raises(BadBlockError):
            DirectorySegment.from_bytes(bytes(raw))

    def test_overwrite_in_place(self):
        seg = DirectorySegment(pool_id=2)
        seg.put(1, b"old")
        seg.put(1, b"newer value")
        assert seg.get(1) == b"newer value"
        assert len(seg) == 1
