"""Unit tests for the partitioned buffer policy (the split ablation)."""

import pytest

from repro.errors import BufferError_
from repro.mneme import LRUBuffer, PartitionedBuffer


@pytest.fixture()
def buf():
    return PartitionedBuffer(low_capacity_bytes=20, high_capacity_bytes=20, threshold_bytes=10)


def test_routes_by_size(buf):
    buf.insert("small", "S", 5)
    buf.insert("big", "B", 15)
    low, high = buf.partitions
    assert low.resident("small")
    assert high.resident("big")


def test_lookup_counts_and_hits(buf):
    buf.insert("a", "A", 5)
    assert buf.lookup("a") == "A"
    assert buf.lookup("ghost") is None
    assert buf.stats.refs == 2
    assert buf.stats.hits == 1


def test_partitions_do_not_borrow_space(buf):
    # Fill the low side; the high side stays empty but cannot be used.
    buf.insert("s1", "A", 10)
    buf.insert("s2", "B", 10)
    buf.insert("s3", "C", 10)  # evicts s1 even though high partition is idle
    assert not buf.resident("s1")
    assert buf.resident("s2") and buf.resident("s3")


def test_single_lru_of_same_total_beats_split_here():
    # The paper's finding, in miniature: one 40-byte buffer holds the
    # working set, two 20-byte halves thrash one side.
    single = LRUBuffer(40)
    split = PartitionedBuffer(20, 20, threshold_bytes=10)
    sizes = {"a": 10, "b": 10, "c": 10}  # all land in the low partition
    for trial in range(3):
        for key, size in sizes.items():
            for buf in (single, split):
                if buf.lookup(key) is None:
                    buf.insert(key, key.upper(), size)
    assert single.stats.hit_rate > split.stats.hit_rate


def test_size_class_change_moves_partition(buf):
    buf.insert("x", "X1", 5)
    buf.insert("x", "X2", 15)  # re-inserted larger: moves to high side
    low, high = buf.partitions
    assert not low.resident("x")
    assert high.resident("x")
    assert buf.lookup("x") == "X2"


def test_take_removes(buf):
    buf.insert("a", "A", 5)
    assert buf.take("a") == "A"
    assert not buf.resident("a")
    assert buf.take("a") is None


def test_reserve_and_release(buf):
    buf.insert("a", "A", 10)
    assert buf.reserve("a")
    buf.insert("b", "B", 10)
    buf.insert("c", "C", 10)  # must evict b, not reserved a
    assert buf.resident("a")
    buf.release_reservations()
    assert not buf.reserve("ghost")


def test_dirty_flush_through_partitions(buf):
    saved = []
    buf.attach(1, lambda key, seg: saved.append(key))
    buf.insert((1, 1), "S", 5, dirty=True)
    buf.insert((1, 2), "L", 15, dirty=True)
    buf.flush()
    assert set(saved) == {(1, 1), (1, 2)}


def test_mark_dirty_absent_raises(buf):
    with pytest.raises(BufferError_):
        buf.mark_dirty("ghost")


def test_clear(buf):
    buf.insert("a", "A", 5)
    buf.clear()
    assert not buf.resident("a")


def test_bad_threshold_rejected():
    with pytest.raises(BufferError_):
        PartitionedBuffer(10, 10, threshold_bytes=0)
