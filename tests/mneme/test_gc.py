"""Tests for garbage collection and file compaction."""

import pytest

from repro.errors import ObjectNotFoundError
from repro.mneme import (
    ChunkedLargeObjectPool,
    LargeObjectPool,
    MediumObjectPool,
    MnemeStore,
    RedoLog,
    SmallObjectPool,
    chunk_ids,
    collect,
    compact,
    live_oids,
    read_linked,
    write_linked,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def fs():
    return SimFileSystem(SimDisk(SimClock()), cache_blocks=128)


def build_file(fs, wal=None):
    store = MnemeStore(fs)
    f = store.open_file("inv", wal=wal)
    f.create_pool(1, SmallObjectPool)
    f.create_pool(2, MediumObjectPool)
    f.create_pool(3, ChunkedLargeObjectPool)
    f.load()
    return f


class TestLiveOids:
    def test_lists_created_objects(self, fs):
        f = build_file(fs)
        ids = [f.pool(2).create(bytes([i]) * 100) for i in range(5)]
        f.flush()
        assert list(live_oids(f.pool(2))) == ids

    def test_excludes_deleted(self, fs):
        f = build_file(fs)
        ids = [f.pool(2).create(bytes([i]) * 100) for i in range(5)]
        f.flush()
        f.pool(2).delete(ids[2])
        assert list(live_oids(f.pool(2))) == ids[:2] + ids[3:]

    def test_small_pool_deleted_slots(self, fs):
        f = build_file(fs)
        ids = [f.pool(1).create(b"x") for _ in range(3)]
        f.flush()
        f.pool(1).delete(ids[1])
        f.flush()
        assert list(live_oids(f.pool(1))) == [ids[0], ids[2]]


class TestCollect:
    def test_sweeps_unreachable_chains(self, fs):
        f = build_file(fs)
        keep = write_linked(f.pool(3), b"k" * 50000, chunk_bytes=10000)
        drop = write_linked(f.pool(3), b"d" * 50000, chunk_bytes=10000)
        small_keep = f.pool(1).create(b"root")
        f.flush()
        report = collect(f, roots=[keep, small_keep])
        assert read_linked(f.pool(3), keep) == b"k" * 50000
        assert f.pool(1).fetch(small_keep) == b"root"
        with pytest.raises(ObjectNotFoundError):
            f.pool(3).fetch(drop)
        assert report.swept == 5  # the dropped chain's 5 chunks
        assert report.marked == 6  # 5 kept chunks + 1 small root

    def test_marks_through_references(self, fs):
        f = build_file(fs)
        head = write_linked(f.pool(3), b"z" * 30000, chunk_bytes=10000)
        ids = chunk_ids(f.pool(3), head)
        f.flush()
        report = collect(f, roots=[head])  # only the head is a root
        assert report.marked == len(ids)
        assert report.swept == 0
        assert read_linked(f.pool(3), head) == b"z" * 30000

    def test_empty_roots_sweeps_everything(self, fs):
        f = build_file(fs)
        f.pool(1).create(b"a")
        f.pool(2).create(b"b" * 100)
        f.flush()
        report = collect(f, roots=[])
        assert report.swept == 2
        assert report.live_by_pool == {"small": 0, "medium": 0, "large": 0}


class TestCompact:
    def test_reclaims_relocation_leaks(self, fs):
        f = build_file(fs)
        pool = f.pool(3)

        class Plain(LargeObjectPool):
            pass

        oid = pool.create(b"v" * 20000)
        f.flush()
        for grow in range(1, 6):
            pool.modify(oid, b"v" * (20000 + grow * 5000))  # relocates
        f.flush()
        before = f.main.size
        report = compact(f)
        assert report.bytes_reclaimed > 0
        assert f.main.size < before
        assert pool.fetch(oid) == b"v" * 45000

    def test_preserves_every_live_object(self, fs):
        f = build_file(fs)
        expected = {}
        for i in range(60):
            data = bytes([i]) * (i * 137 % 6000)
            pool = f.pool(1) if len(data) <= 12 else f.pool(2) if len(data) <= 4096 else f.pool(3)
            expected[pool.create(data)] = data
        f.flush()
        compact(f)
        f.fs.chill()
        for pool in f.pools.values():
            pool.buffer.clear()
        for oid, data in expected.items():
            assert f.fetch(oid) == data

    def test_dropped_segments_counted(self, fs):
        f = build_file(fs)
        oid = f.pool(3).create(b"gone" * 3000)
        keep = f.pool(3).create(b"stay" * 3000)
        f.flush()
        f.pool(3).delete(oid)
        report = compact(f)
        assert report.segments_dropped >= 1
        assert f.pool(3).fetch(keep) == b"stay" * 3000

    def test_compaction_after_gc(self, fs):
        f = build_file(fs)
        keep = write_linked(f.pool(3), b"k" * 80000, chunk_bytes=20000)
        drop = write_linked(f.pool(3), b"d" * 80000, chunk_bytes=20000)
        f.flush()
        size_full = f.total_size
        collect(f, roots=[keep])
        report = compact(f)
        assert f.total_size < size_full
        assert report.bytes_reclaimed >= 80000
        assert read_linked(f.pool(3), keep) == b"k" * 80000

    def test_wal_checkpointed(self, fs):
        wal = RedoLog(fs.create("inv.wal"))
        f = build_file(fs, wal=wal)
        f.pool(2).create(b"m" * 500)
        f.flush()
        assert wal.size > 0
        compact(f)
        assert wal.size == 0

    def test_survives_reopen(self, fs):
        f = build_file(fs)
        ids = [f.pool(2).create(bytes([i]) * 500) for i in range(30)]
        f.flush()
        f.pool(2).delete(ids[7])
        compact(f)
        store2 = MnemeStore(fs)
        f2 = store2.open_file("inv")
        f2.create_pool(1, SmallObjectPool)
        f2.create_pool(2, MediumObjectPool)
        f2.create_pool(3, ChunkedLargeObjectPool)
        f2.load()
        for i, oid in enumerate(ids):
            if i == 7:
                with pytest.raises(ObjectNotFoundError):
                    f2.fetch(oid)
            else:
                assert f2.fetch(oid) == bytes([i]) * 500
