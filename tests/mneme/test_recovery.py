"""Unit and failure-injection tests for write-ahead logging and recovery."""

import pytest

from repro.errors import RecoveryError
from repro.mneme import (
    MediumObjectPool,
    MnemeStore,
    RedoLog,
    recover,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def fs():
    return SimFileSystem(SimDisk(SimClock()), cache_blocks=128)


def test_log_and_replay(fs):
    main = fs.create("main")
    main.write(0, b"\x00" * 100)
    log = RedoLog(fs.create("wal"))
    log.log_write(10, b"HELLO")
    log.log_write(50, b"WORLD")
    report = recover(log, main)
    assert report.replayed == 2
    assert report.bytes_replayed == 10
    assert not report.torn_tail
    assert main.read(10, 5) == b"HELLO"
    assert main.read(50, 5) == b"WORLD"


def test_recovery_is_idempotent(fs):
    main = fs.create("main")
    main.write(0, b"\x00" * 100)
    log = RedoLog(fs.create("wal"))
    log.log_write(0, b"DATA")
    recover(log, main)
    # Log was checkpointed: second recovery replays nothing.
    report = recover(log, main)
    assert report.replayed == 0
    assert main.read(0, 4) == b"DATA"


def test_torn_tail_detected_and_skipped(fs):
    main = fs.create("main")
    main.write(0, b"\x00" * 100)
    wal_file = fs.create("wal")
    log = RedoLog(wal_file)
    log.log_write(0, b"GOOD")
    log.log_write(20, b"TORN-RECORD")
    # Simulate a crash mid-write: chop the last record's payload.
    wal_file.truncate(wal_file.size - 5)
    report = recover(RedoLog(wal_file), main)
    assert report.replayed == 1
    assert report.torn_tail
    assert main.read(0, 4) == b"GOOD"
    assert main.read(20, 4) == b"\x00" * 4  # torn record not replayed


def test_corrupt_payload_detected(fs):
    main = fs.create("main")
    main.write(0, b"\x00" * 100)
    wal_file = fs.create("wal")
    log = RedoLog(wal_file)
    log.log_write(0, b"FIRST")
    log.log_write(30, b"SECOND")
    # Flip a byte inside the second record's payload.
    wal_file.write(wal_file.size - 2, b"!")
    report = recover(RedoLog(wal_file), main)
    assert report.replayed == 1
    assert report.torn_tail


def test_foreign_log_rejected(fs):
    main = fs.create("main")  # empty file
    log = RedoLog(fs.create("wal"))
    log.log_write(5000, b"X")  # targets far past EOF of an empty file
    with pytest.raises(RecoveryError):
        recover(log, main)


def test_checkpoint_truncates(fs):
    log = RedoLog(fs.create("wal"))
    log.log_write(0, b"abc")
    assert log.size > 0
    log.checkpoint()
    assert log.size == 0
    records, torn = log.records()
    assert records == [] and not torn


def test_wal_protects_mneme_segment_writes(fs):
    """End-to-end: crash after WAL write but before main-file write."""
    store = MnemeStore(fs)
    wal = RedoLog(fs.create("inv.wal"))
    f = store.open_file("inv", wal=wal)
    pool = f.create_pool(2, MediumObjectPool)
    f.load()
    oid = pool.create(b"durable" * 100)
    f.flush()

    # Every segment byte that reached the main file is also in the log,
    # so replaying the log reconstructs the same contents.
    image_before = f.main.read(0, f.main.size)
    # Simulate losing the main file's segment area (keep the header).
    f.main.write(16, b"\x00" * (f.main.size - 16))
    recover(wal, f.main)
    assert f.main.read(0, f.main.size) == image_before

    store2 = MnemeStore(fs)
    f2 = store2.open_file("inv")
    pool2 = f2.create_pool(2, MediumObjectPool)
    f2.load()
    assert f2.fetch(oid) == b"durable" * 100
