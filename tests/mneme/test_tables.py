"""Unit tests for the paged auxiliary tables."""

import pytest

from repro.errors import MnemeError
from repro.mneme import PagedTable
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def fs():
    return SimFileSystem(SimDisk(SimClock()), cache_blocks=32)


def test_append_and_get(fs):
    table = PagedTable(fs.create("t"), "<QI")
    assert table.append(100, 8) == 0
    assert table.append(200, 16) == 1
    assert table.get(0) == (100, 8)
    assert table.get(1) == (200, 16)
    assert len(table) == 2


def test_set_overwrites(fs):
    table = PagedTable(fs.create("t"), "<I")
    table.append(1)
    table.set(0, 99)
    assert table.get(0) == (99,)


def test_out_of_range_rejected(fs):
    table = PagedTable(fs.create("t"), "<I")
    table.append(1)
    with pytest.raises(IndexError):
        table.get(1)
    with pytest.raises(IndexError):
        table.get(-1)
    with pytest.raises(IndexError):
        table.set(5, 0)


def test_flush_and_reopen(fs):
    f = fs.create("t")
    table = PagedTable(f, "<QI")
    for i in range(3000):  # several pages
        table.append(i * 7, i)
    table.flush()
    reopened = PagedTable(f, "<QI")
    assert len(reopened) == 3000
    assert reopened.get(0) == (0, 0)
    assert reopened.get(2999) == (2999 * 7, 2999)
    assert reopened.get(1234) == (1234 * 7, 1234)


def test_unflushed_appends_not_persisted(fs):
    f = fs.create("t")
    table = PagedTable(f, "<I")
    table.append(1)
    table.flush()
    table.append(2)  # not flushed
    reopened = PagedTable(f, "<I")
    assert len(reopened) == 1


def test_pages_permanently_cached_after_first_access(fs):
    f = fs.create("t")
    table = PagedTable(f, "<I")
    for i in range(5000):
        table.append(i)
    table.flush()
    reopened = PagedTable(f, "<I")
    before = f.stats.read_calls
    reopened.get(10)
    first = f.stats.read_calls - before
    reopened.get(11)
    reopened.get(900)  # same page (1024 entries per 4 KB page of <I)
    second = f.stats.read_calls - before - first
    assert first == 1
    assert second == 0


def test_distinct_pages_cost_one_access_each(fs):
    f = fs.create("t")
    table = PagedTable(f, "<I")
    for i in range(5000):
        table.append(i)
    table.flush()
    reopened = PagedTable(f, "<I")
    before = f.stats.read_calls
    reopened.get(0)
    reopened.get(4999)
    assert f.stats.read_calls - before == 2
    assert reopened.cached_pages == 2


def test_iteration(fs):
    table = PagedTable(fs.create("t"), "<I")
    for i in range(10):
        table.append(i * 2)
    assert [v for (v,) in table] == [i * 2 for i in range(10)]


def test_format_mismatch_detected(fs):
    f = fs.create("t")
    table = PagedTable(f, "<QI")
    table.append(1, 2)
    table.flush()
    with pytest.raises(MnemeError):
        PagedTable(f, "<I")


def test_not_a_table_detected(fs):
    f = fs.create("junk")
    f.write(0, b"this is not an auxiliary table header")
    with pytest.raises(MnemeError):
        PagedTable(f, "<I")


def test_set_then_flush_then_reopen(fs):
    f = fs.create("t")
    table = PagedTable(f, "<I")
    for i in range(2000):
        table.append(i)
    table.flush()
    table.set(1500, 42)
    table.flush()
    reopened = PagedTable(f, "<I")
    assert reopened.get(1500) == (42,)
    assert reopened.get(1499) == (1499,)
