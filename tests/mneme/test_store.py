"""Unit tests for the store layer: files, routing, global ids."""

import pytest

from repro.errors import MnemeError, ObjectNotFoundError
from repro.mneme import (
    LargeObjectPool,
    MediumObjectPool,
    MnemeStore,
    SmallObjectPool,
    make_global,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def fs():
    return SimFileSystem(SimDisk(SimClock()), cache_blocks=128)


@pytest.fixture()
def store(fs):
    return MnemeStore(fs)


def standard_file(store, name):
    f = store.open_file(name)
    f.create_pool(1, SmallObjectPool)
    f.create_pool(2, MediumObjectPool)
    f.create_pool(3, LargeObjectPool)
    f.load()
    return f


def test_routing_across_pools(store):
    f = standard_file(store, "inv")
    s = f.pool(1).create(b"s")
    m = f.pool(2).create(b"m" * 100)
    l = f.pool(3).create(b"l" * 10000)
    f.flush()
    # File-level fetch routes by logical segment ownership.
    assert f.fetch(s) == b"s"
    assert f.fetch(m) == b"m" * 100
    assert f.fetch(l) == b"l" * 10000


def test_fetch_unknown_logseg(store):
    f = standard_file(store, "inv")
    with pytest.raises(ObjectNotFoundError):
        f.fetch(99999)


def test_duplicate_pool_id_rejected(store):
    f = store.open_file("inv")
    f.create_pool(1, SmallObjectPool)
    with pytest.raises(MnemeError):
        f.create_pool(1, MediumObjectPool)


def test_unknown_pool_id(store):
    f = store.open_file("inv")
    with pytest.raises(MnemeError):
        f.pool(9)


def test_global_ids_across_files(store):
    f1 = standard_file(store, "one")
    f2 = standard_file(store, "two")
    o1 = f1.pool(2).create(b"from file one")
    o2 = f2.pool(2).create(b"from file two")
    f1.flush()
    f2.flush()
    g1 = store.global_id(f1, o1)
    g2 = store.global_id(f2, o2)
    assert g1 != g2
    assert store.fetch(g1) == b"from file one"
    assert store.fetch(g2) == b"from file two"


def test_fetch_unknown_file_number(store):
    standard_file(store, "one")
    with pytest.raises(ObjectNotFoundError):
        store.fetch(make_global(42, 1))


def test_open_file_is_idempotent(store):
    f1 = store.open_file("inv")
    f2 = store.open_file("inv")
    assert f1 is f2


def test_file_method(store):
    from repro.errors import FileNotFoundInStoreError

    standard_file(store, "inv")
    assert store.file("inv").name == "inv"
    with pytest.raises(FileNotFoundInStoreError):
        store.file("ghost")


def test_modify_and_delete_route(store):
    f = standard_file(store, "inv")
    m = f.pool(2).create(b"before" * 10)
    f.flush()
    f.modify(m, b"after!" * 10)
    assert f.fetch(m) == b"after!" * 10
    f.delete(m)
    with pytest.raises(ObjectNotFoundError):
        f.fetch(m)


def test_total_size_counts_main_and_aux(store):
    f = standard_file(store, "inv")
    f.pool(3).create(b"x" * 50000)
    f.flush()
    assert f.total_size > 50000
    assert f.aux_size > 0
    assert f.total_size >= f.main.size + f.aux_size


def test_meta_mismatch_detected(fs):
    store = MnemeStore(fs)
    f = standard_file(store, "inv")
    f.pool(1).create(b"x")
    f.flush()

    store2 = MnemeStore(fs)
    f2 = store2.open_file("inv")
    f2.create_pool(2, MediumObjectPool)  # pool 1 missing
    with pytest.raises(MnemeError):
        f2.load()


def test_store_level_reservations(store):
    from repro.mneme import LRUBuffer

    f = standard_file(store, "inv")
    pool = f.pool(2)
    pool.attach_buffer(LRUBuffer(32 * 1024))
    oid = pool.create(b"data" * 50)
    f.flush()
    gid = store.global_id(f, oid)
    store.fetch(gid)
    assert store.reserve(gid)
    store.release_reservations()
    assert not store.fetch(gid) == b""  # still fetchable
