"""Unit tests for linked (chunked) large objects."""

import pytest

from repro.errors import MnemeError
from repro.mneme import (
    ChunkedLargeObjectPool,
    MnemeStore,
    append_linked,
    chunk_ids,
    delete_linked,
    iter_linked,
    linked_length,
    reachable,
    read_linked,
    write_linked,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


@pytest.fixture()
def pool():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=256)
    store = MnemeStore(fs)
    f = store.open_file("linked")
    p = f.create_pool(3, ChunkedLargeObjectPool)
    f.load()
    return p


def test_roundtrip_single_chunk(pool):
    head = write_linked(pool, b"short payload", chunk_bytes=1000)
    assert read_linked(pool, head) == b"short payload"
    assert len(chunk_ids(pool, head)) == 1


def test_roundtrip_many_chunks(pool):
    data = bytes(range(256)) * 500  # 128 000 bytes
    head = write_linked(pool, data, chunk_bytes=10000)
    assert read_linked(pool, head) == data
    assert len(chunk_ids(pool, head)) == 13


def test_empty_payload(pool):
    head = write_linked(pool, b"", chunk_bytes=100)
    assert read_linked(pool, head) == b""
    assert linked_length(pool, head) == 0


def test_incremental_retrieval_stops_early(pool):
    data = b"A" * 50000
    head = write_linked(pool, data, chunk_bytes=5000)
    pool.file.flush() if hasattr(pool.file, "flush") else None
    fetches_before = pool.fetches
    prefix = read_linked(pool, head, max_bytes=12000)
    assert prefix == b"A" * 12000
    # Only 3 of the 10 chunks were fetched.
    assert pool.fetches - fetches_before == 3


def test_iter_linked_yields_chunks_in_order(pool):
    head = write_linked(pool, b"0123456789", chunk_bytes=4)
    assert list(iter_linked(pool, head)) == [b"0123", b"4567", b"89"]


def test_append_within_tail_chunk(pool):
    head = write_linked(pool, b"abc", chunk_bytes=10)
    append_linked(pool, head, b"def", chunk_bytes=10)
    assert read_linked(pool, head) == b"abcdef"
    assert len(chunk_ids(pool, head)) == 1


def test_append_overflows_into_new_chunks(pool):
    head = write_linked(pool, b"x" * 8, chunk_bytes=10)
    append_linked(pool, head, b"y" * 25, chunk_bytes=10)
    assert read_linked(pool, head) == b"x" * 8 + b"y" * 25
    assert len(chunk_ids(pool, head)) == 4  # 10+10+10+3


def test_append_cost_is_local(pool):
    # Appending must not rewrite the whole object.
    data = b"z" * 200000
    head = write_linked(pool, data, chunk_bytes=20000)
    fetches_before = pool.fetches
    append_linked(pool, head, b"tail", chunk_bytes=20000)
    # chunk_ids walks the chain (11 fetches incl. new tail check) + 1 tail
    # re-fetch; far fewer than rewriting 200 KB.
    assert pool.fetches - fetches_before <= len(chunk_ids(pool, head)) + 2
    assert read_linked(pool, head).endswith(b"tail")


def test_linked_length(pool):
    head = write_linked(pool, b"q" * 12345, chunk_bytes=1000)
    assert linked_length(pool, head) == 12345


def test_delete_linked(pool):
    head = write_linked(pool, b"d" * 5000, chunk_bytes=1000)
    count = delete_linked(pool, head)
    assert count == 5
    with pytest.raises(Exception):
        read_linked(pool, head)


def test_scan_references(pool):
    head = write_linked(pool, b"r" * 3000, chunk_bytes=1000)
    ids = chunk_ids(pool, head)
    refs = pool.scan_references(pool.fetch(head))
    assert refs == (ids[1],)
    tail_refs = pool.scan_references(pool.fetch(ids[-1]))
    assert tail_refs == ()


def test_reachable_marks_whole_chain(pool):
    head1 = write_linked(pool, b"a" * 3000, chunk_bytes=1000)
    head2 = write_linked(pool, b"b" * 2000, chunk_bytes=1000)
    marked = reachable(pool, [head1])
    assert set(chunk_ids(pool, head1)) == marked
    assert not marked & set(chunk_ids(pool, head2))


def test_bad_chunk_size_rejected(pool):
    with pytest.raises(MnemeError):
        write_linked(pool, b"x", chunk_bytes=0)


def test_cycle_detection(pool):
    head = write_linked(pool, b"c" * 2000, chunk_bytes=1000)
    ids = chunk_ids(pool, head)
    # Corrupt the tail to point back at the head.
    import struct

    tail_data = pool.fetch(ids[-1])
    _, length = struct.unpack_from("<II", tail_data, 0)
    pool.modify(ids[-1], struct.pack("<II", head, length) + tail_data[8:])
    with pytest.raises(MnemeError):
        read_linked(pool, head)
