"""Pre-bounds platters still load — and transparently run exhaustive.

The bound metadata added for dynamic pruning changed the dictionary
record layout (v2: ``max_tf`` + bound-sidecar key per term).  A v1
file, written before bounds existed, starts with its entry count where
a v2 file carries a magic word, so :meth:`HashDictionary.load` sniffs
the version from the first word alone.  These tests pin that sniff and
the behavioural contract on old data: ``prune="auto"`` silently
evaluates exhaustively (no metadata, no bound, no skip), and
``prune="require"`` refuses loudly with
:class:`~repro.errors.PruningUnsupportedError`.
"""

import struct

import pytest

from repro.errors import PruningUnsupportedError
from repro.inquery import (
    CollectionIndex,
    DocTable,
    Document,
    DocumentAtATimeEngine,
    HashDictionary,
    IndexBuilder,
    MnemeInvertedFile,
)
from repro.simdisk import SimClock, SimDisk, SimFileSystem


def v1_bytes(dictionary: HashDictionary) -> bytes:
    """Re-serialize a dictionary in the pre-bounds v1 layout."""
    parts = [struct.pack("<II", len(dictionary), dictionary._next_id)]
    for entry in dictionary.entries():
        raw = entry.term.encode("utf-8")
        parts.append(
            HashDictionary._REC.pack(
                entry.term_id, entry.df, entry.ctf,
                entry.storage_key, len(raw),
            )
        )
        parts.append(raw)
    return b"".join(parts)


def build_index():
    fs = SimFileSystem(SimDisk(SimClock()), cache_blocks=64)
    store = MnemeInvertedFile(fs)
    builder = IndexBuilder(fs, store, stem_fn=str)
    docs = [
        "object store segments hold inverted records",
        "records are read one inverted list per term",
        "belief values rank documents for every query",
        "query terms map to records through the dictionary",
        "the dictionary survives a version change intact",
    ]
    for doc_id, text in enumerate(docs, start=1):
        builder.add_document(Document(doc_id, tokens=text.split()))
    return builder.finalize()


def reopen_with_v1_dictionary(index) -> CollectionIndex:
    """A fresh process view of a platter whose dictionary predates bounds."""
    fs = index.fs
    index.save()
    fs.open("index.dict").truncate(0)
    fs.open("index.dict").write(0, v1_bytes(index.dictionary))
    return CollectionIndex(
        fs=fs,
        dictionary=HashDictionary.load(fs.open("index.dict")),
        doctable=DocTable.load(fs.open("index.docs")),
        store=MnemeInvertedFile(fs),
        stats=index.stats,
        stopwords=index.stopwords,
        stem_fn=index.stem_fn,
    )


def test_v1_load_sniffs_version_and_zeroes_bound_metadata():
    index = build_index()
    fs = index.fs
    file = fs.create("v1.dict")
    file.write(0, v1_bytes(index.dictionary))
    loaded = HashDictionary.load(file)
    assert len(loaded) == len(index.dictionary)
    for entry in index.dictionary.entries():
        old = loaded.lookup(entry.term)
        assert old is not None
        assert (old.term_id, old.df, old.ctf, old.storage_key) == (
            entry.term_id, entry.df, entry.ctf, entry.storage_key
        )
        # The v2 build recorded real bounds; the v1 round-trip has none.
        assert entry.max_tf > 0
        assert old.max_tf == 0
        assert old.bounds_key == 0


def test_v2_save_reloads_bound_metadata():
    index = build_index()
    file = index.fs.create("v2.dict")
    index.dictionary.save(file)
    loaded = HashDictionary.load(file)
    for entry in index.dictionary.entries():
        reloaded = loaded.lookup(entry.term)
        assert reloaded.max_tf == entry.max_tf
        assert reloaded.bounds_key == entry.bounds_key


def test_v1_platter_auto_falls_back_to_exhaustive():
    index = build_index()
    query = "#sum( records inverted query )"
    expected = DocumentAtATimeEngine(index, top_k=3).run_query(query).ranking
    old = reopen_with_v1_dictionary(index)
    result = DocumentAtATimeEngine(old, top_k=3, prune="auto").run_query(query)
    assert result.ranking == expected
    assert not result.pruned
    assert result.documents_skipped == 0
    assert result.blocks_skipped == 0
    assert result.prune_threshold_updates == 0


def test_v1_platter_require_raises():
    index = build_index()
    old = reopen_with_v1_dictionary(index)
    engine = DocumentAtATimeEngine(old, top_k=3, prune="require")
    with pytest.raises(PruningUnsupportedError):
        engine.run_query("#sum( records inverted query )")
