"""Legacy setup shim.

The execution environment has no ``wheel`` package, so pip cannot perform a
PEP 660 editable install.  This shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` fall back to ``setup.py develop``.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
